"""Crash-tolerant campaign scheduler behind the ``repro serve`` API.

One :class:`CampaignScheduler` owns a state directory and keeps three
invariants no matter how the process dies:

* **No lost acknowledged job.**  A job is journaled (fsynced) before
  its submission is acknowledged; recovery replays the journal and
  re-queues everything not yet finished.
* **Bit-identical verdicts.**  Jobs execute as
  :class:`~repro.resilience.campaign.ResilientCampaign` shards with a
  per-job :class:`~repro.resilience.checkpoint.CheckpointStore`; a
  daemon SIGKILLed mid-campaign and restarted on the same state
  directory resumes each in-flight campaign at its exact cursor and
  draw position, so the final verdict equals an uninterrupted run's.
* **Bounded admission.**  The queue never exceeds ``max_queue``;
  beyond it submissions fail fast with a Retry-After hint instead of
  growing without bound (the HTTP layer maps this to 429).

State directory layout::

    <state-dir>/journal/journal-00000N.wal   write-ahead journal
    <state-dir>/jobs/<job-id>/ckpt/          campaign snapshots
    <state-dir>/jobs/<job-id>/verdict.json   CRC-checked verdict
    <state-dir>/endpoint.json                host/port/pid discovery

Shard threads drive the campaign granules, but the heavy lifting is
multi-core: jobs that did not pin an engine run on the parallel engine,
their fleet published once over shared memory to a persistent process
pool, with the daemon-wide :class:`~repro.service.governor.CoreGovernor`
re-arbitrating each job's worker lease at every shard boundary.  The
asyncio side never blocks on campaign work, and the drain path stops
the pool **between** shards, checkpoints, and leaves the rest to the
next incarnation.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import re
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import (
    AdmissionError,
    CampaignAbortedError,
    CheckpointError,
    ConfigurationError,
    ReproError,
)
from ..obs.context import span
from ..perf.parallel import default_workers
from ..resilience.campaign import CampaignSpec, ResilientCampaign
from ..resilience.chaos import ChaosInjector, InjectedKillError
from ..resilience.checkpoint import (
    CheckpointStore,
    read_checkpoint,
    write_checkpoint,
)
from ..testing.library import TestcaseLibrary
from .chaos import ServiceChaos
from .governor import CoreGovernor, ShardLatencyWindow, parse_retention
from .journal import JournalWriter, ReplayReport, replay_journal

__all__ = [
    "JOB_STATES",
    "JobRecord",
    "CampaignScheduler",
    "VERDICT_FILE",
]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_EXPIRED = "expired"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_EXPIRED)

VERDICT_FILE = "verdict.json"

_JOB_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_AUTO_ID_RE = re.compile(r"^job-(\d{6,})$")

#: Spec keys a submission may carry besides the CampaignSpec fields.
_SUBMIT_EXTRAS = ("job_id", "chaos", "workers")


@dataclass
class JobRecord:
    """Scheduler-side view of one submitted campaign job."""

    job_id: str
    spec: CampaignSpec
    state: str = JOB_QUEUED
    submitted_seq: int = 0
    #: Campaign-level chaos schedule ({shard: [kinds]}), test-only.
    chaos_schedule: Optional[Dict[int, List[str]]] = None
    chaos_seed: int = 0
    error: Optional[str] = None
    restarts: int = 0
    recovered: bool = False
    finished_at: Optional[float] = None
    #: Client ``workers`` cap from the submission (None = governor's call).
    workers_hint: Optional[int] = None
    #: True when the client named an engine explicitly; pinned jobs are
    #: executed exactly as submitted, never promoted to the pool.
    engine_pinned: bool = False
    #: Cores currently leased from the governor (0 while not running).
    workers_leased: int = 0
    #: Sticky: this job's process pool broke; it runs in-process now.
    pool_degraded: bool = False
    #: Journal seq of the verdict entry (retention orders by this).
    verdict_seq: int = 0
    #: Wall-clock completion time journaled with the verdict, so age
    #: retention survives restarts (monotonic clocks do not).
    finished_unix: Optional[float] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def status_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "restarts": self.restarts,
            "recovered": self.recovered,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.workers_leased:
            doc["workers"] = self.workers_leased
        return doc


class _HookedCheckpointStore(CheckpointStore):
    """Checkpoint store that visits the daemon chaos hook after every
    durable save — the ``checkpoint_done`` kill point."""

    def __init__(self, directory, chaos: ServiceChaos, keep: int = 2):
        super().__init__(directory, keep=keep)
        self._service_chaos = chaos

    def save(self, payload):
        path = super().save(payload)
        self._service_chaos.fire("checkpoint_done")
        return path


class CampaignScheduler:
    """Journal-backed job queue + executor over resilient campaigns."""

    def __init__(
        self,
        state_dir,
        library: TestcaseLibrary,
        *,
        max_queue: int = 64,
        max_active: int = 1,
        checkpoint_every: int = 2,
        max_job_restarts: int = 8,
        job_timeout_s: Optional[float] = None,
        retry_after_s: float = 1.0,
        core_budget: Optional[int] = None,
        job_workers: Optional[int] = None,
        parallel_granule: int = 64,
        retain_verdicts=None,
        obs=None,
        chaos: Optional[ServiceChaos] = None,
    ):
        if max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if max_active < 1:
            raise ConfigurationError("max_active must be >= 1")
        self.state_dir = Path(state_dir)
        self.library = library
        self.max_queue = max_queue
        self.max_active = max_active
        self.checkpoint_every = checkpoint_every
        self.max_job_restarts = max_job_restarts
        self.job_timeout_s = job_timeout_s
        self.retry_after_s = retry_after_s
        self.core_budget = (
            core_budget if core_budget is not None else default_workers()
        )
        self.governor = CoreGovernor(
            self.core_budget,
            granule=parallel_granule,
            job_cap=job_workers,
            obs=obs,
        )
        self.retention = parse_retention(retain_verdicts)
        self._latency = ShardLatencyWindow(
            floor_s=retry_after_s, cap_s=max(60.0, retry_after_s)
        )
        self.obs = obs
        self.chaos = chaos
        self._running: Dict[str, ResilientCampaign] = {}
        self._running_lock = threading.Lock()
        self._gc_lock = threading.Lock()
        self.jobs: Dict[str, JobRecord] = {}
        self.replay_report = ReplayReport()
        self._order: List[str] = []  # submission order, for recovery
        self._journal: Optional[JournalWriter] = None
        self._journal_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._next_job_number = 1
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._stop_event = threading.Event()
        self._draining = False
        self._active = 0
        self._recover()

    # -- recovery ------------------------------------------------------------

    def _job_dir(self, job_id: str) -> Path:
        return self.state_dir / "jobs" / job_id

    def _verdict_path(self, job_id: str) -> Path:
        return self._job_dir(job_id) / VERDICT_FILE

    def _recover(self) -> None:
        """Rebuild the job table from the journal, then open a fresh
        segment for this incarnation.  Runs before the API binds."""
        journal_dir = self.state_dir / "journal"
        entries = replay_journal(
            journal_dir, salvage=True, report=self.replay_report
        )
        max_seq = 0
        for entry in entries:
            max_seq = max(max_seq, entry.seq)
            job_id = entry.job
            if entry.kind == "submit" and job_id is not None:
                try:
                    spec = CampaignSpec.from_dict(entry.data["spec"])
                except (KeyError, TypeError, ConfigurationError) as error:
                    self.replay_report.problems.append(
                        f"job {job_id}: unusable journaled spec ({error})"
                    )
                    continue
                record = JobRecord(
                    job_id=job_id,
                    spec=spec,
                    submitted_seq=entry.seq,
                    recovered=True,
                )
                chaos = entry.data.get("chaos")
                if isinstance(chaos, dict):
                    record.chaos_schedule = {
                        int(shard): list(kinds)
                        for shard, kinds in chaos.get(
                            "schedule", {}
                        ).items()
                    }
                    record.chaos_seed = int(chaos.get("seed", 0))
                exec_hints = entry.data.get("exec")
                if isinstance(exec_hints, dict):
                    workers = exec_hints.get("workers")
                    if isinstance(workers, int) and workers >= 1:
                        record.workers_hint = workers
                    record.engine_pinned = bool(
                        exec_hints.get("engine_pinned", False)
                    )
                self.jobs[job_id] = record
                self._order.append(job_id)
                match = _AUTO_ID_RE.match(job_id)
                if match:
                    self._next_job_number = max(
                        self._next_job_number, int(match.group(1)) + 1
                    )
            elif entry.kind == "start" and job_id in self.jobs:
                self.jobs[job_id].state = JOB_RUNNING
            elif entry.kind == "verdict" and job_id in self.jobs:
                record = self.jobs[job_id]
                record.state = JOB_DONE
                record.verdict_seq = entry.seq
                finished = entry.data.get("finished_unix")
                if isinstance(finished, (int, float)):
                    record.finished_unix = float(finished)
            elif entry.kind == "failed" and job_id in self.jobs:
                record = self.jobs[job_id]
                record.state = JOB_FAILED
                record.error = str(entry.data.get("error", "unknown"))
            elif entry.kind == "gc" and job_id in self.jobs:
                # A journaled GC is final: replay never resurrects the
                # verdict, even though the submit/verdict entries that
                # precede it are still in the log.
                self.jobs[job_id].state = JOB_EXPIRED
        # A journaled verdict is only as good as the verdict file it
        # points at; a crash between journal append and file landing is
        # impossible (the file is written first), but bit rot is not.
        for job_id in self._order:
            record = self.jobs[job_id]
            if record.state == JOB_DONE:
                try:
                    read_checkpoint(self._verdict_path(job_id))
                except CheckpointError as error:
                    self.replay_report.problems.append(
                        f"job {job_id}: verdict file unusable ({error}); "
                        f"re-running"
                    )
                    record.state = JOB_QUEUED
            elif record.state == JOB_RUNNING:
                # Interrupted mid-campaign: re-queue; its checkpoint
                # store carries the resume point.
                record.state = JOB_QUEUED
            elif record.state == JOB_EXPIRED:
                # Finish a deletion the previous incarnation journaled
                # but did not complete before dying (idempotent).
                shutil.rmtree(self._job_dir(job_id), ignore_errors=True)
        self._journal = JournalWriter(
            journal_dir,
            start_seq=max_seq + 1,
            post_append=(
                self.chaos.on_journal_append if self.chaos is not None
                else None
            ),
        )
        if self.obs is not None:
            for _ in self.replay_report.problems:
                self.obs.inc(
                    "repro_service_journal_appends_total", kind="salvaged"
                )
        # Age-based retention is time-triggered, so apply it on boot
        # too: verdicts that crossed the line while the daemon was down
        # expire before the API binds.
        self._gc_verdicts()

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def pending_jobs(self) -> List[str]:
        """Unfinished jobs in submission order (recovery work list)."""
        return [
            job_id
            for job_id in self._order
            if self.jobs[job_id].state == JOB_QUEUED
        ]

    async def start(self) -> None:
        """Spawn workers and enqueue every unfinished journaled job."""
        self._queue = asyncio.Queue()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_active,
            thread_name_prefix="repro-job",
        )
        for job_id in self.pending_jobs():
            self._queue.put_nowait(job_id)
            if self.obs is not None:
                self.obs.inc("repro_service_jobs_total", event="resumed")
        self._update_gauges()
        loop = asyncio.get_running_loop()
        for _ in range(self.max_active):
            self._workers.append(loop.create_task(self._worker()))

    async def drain(self) -> None:
        """Graceful stop: no new work, checkpoint in-flight campaigns.

        Safe to call more than once.  Returns when every worker has
        parked; queued jobs stay journaled for the next incarnation.
        """
        if self._draining:
            return
        self._draining = True
        started = time.monotonic()
        self._stop_event.set()
        if self.chaos is not None:
            self.chaos.fire("drain")
        if self._queue is not None:
            for _ in self._workers:
                self._queue.put_nowait(None)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        with self._journal_lock:
            if self._journal is not None:
                self._journal.close()
        if self.obs is not None:
            self.obs.set_gauge(
                "repro_service_drain_seconds", time.monotonic() - started
            )
            self._update_gauges()

    # -- admission -----------------------------------------------------------

    def _update_gauges(self) -> None:
        if self.obs is None:
            return
        depth = self._queue.qsize() if self._queue is not None else len(
            self.pending_jobs()
        )
        self.obs.set_gauge("repro_service_queue_depth", depth)
        self.obs.set_gauge("repro_service_active_jobs", self._active)

    def _retry_after_hint(self) -> float:
        """Adaptive back-off: median shard latency x in-flight depth.

        Before any shard has landed this is the configured floor, so a
        fresh daemon answers the same fixed hint it always did.
        """
        depth = (
            self._queue.qsize() if self._queue is not None else 0
        ) + self._active
        return self._latency.hint(depth)

    def _journal_append(self, kind: str, job_id: str, **data) -> int:
        started = time.perf_counter()
        with self._journal_lock:
            if self._journal is None:
                raise AdmissionError(
                    "journal is closed (daemon draining)", status=503
                )
            seq = self._journal.append(kind, job=job_id, **data)
        if self.obs is not None:
            self.obs.inc("repro_service_journal_appends_total", kind=kind)
            # Unlabeled on purpose: the journal_append_latency health
            # rule watches the p99 of the whole fsync path, and label
            # fan-out would split the histogram it alerts on.
            self.obs.observe(
                "repro_service_journal_append_seconds",
                time.perf_counter() - started,
            )
        return seq

    def parse_submission(self, body: Dict[str, object]) -> Dict[str, object]:
        """Validate a ``/submit`` body; returns normalized fields.

        Raises :class:`ConfigurationError` (HTTP 400) on anything the
        spec layer rejects, :class:`AdmissionError` on service-level
        violations.
        """
        if not isinstance(body, dict):
            raise ConfigurationError("submission body must be a JSON object")
        unknown = set(body) - set(_SUBMIT_EXTRAS) - {
            spec_field.name
            for spec_field in CampaignSpec.__dataclass_fields__.values()
        }
        if unknown:
            raise ConfigurationError(
                f"unknown submission fields: {sorted(unknown)}"
            )
        spec_fields = {
            key: value
            for key, value in body.items()
            if key not in _SUBMIT_EXTRAS
        }
        spec = CampaignSpec.from_dict(spec_fields)
        job_id = body.get("job_id")
        if job_id is not None:
            if not isinstance(job_id, str) or not _JOB_ID_RE.match(job_id):
                raise ConfigurationError(
                    "job_id must match [A-Za-z0-9][A-Za-z0-9._-]{0,63}"
                )
        chaos = body.get("chaos")
        if chaos is not None:
            if not isinstance(chaos, dict) or not isinstance(
                chaos.get("schedule", {}), dict
            ):
                raise ConfigurationError(
                    "chaos must be {'schedule': {shard: [kinds]}, 'seed': n}"
                )
        workers = body.get("workers")
        if workers is not None:
            if isinstance(workers, bool) or not isinstance(workers, int):
                raise ConfigurationError("workers must be an integer")
            if workers < 1:
                raise ConfigurationError("workers must be >= 1")
            # Capped, not rejected: the budget is a deployment detail a
            # client cannot know, so an over-ask degrades gracefully.
            workers = min(workers, self.core_budget)
        return {
            "spec": spec,
            "job_id": job_id,
            "chaos": chaos,
            "workers": workers,
            # An explicit engine is a pin: the job runs exactly as
            # submitted.  Anything else is an execution detail the
            # daemon may promote to the process pool (identical output
            # by the engines' parity contract).
            "engine_pinned": "engine" in body,
        }

    async def submit(self, body: Dict[str, object]) -> JobRecord:
        """Admit one job: validate, journal (fsync), queue, return.

        The returned record is the acknowledgment; it must not be sent
        to the client before this coroutine finishes (the journal write
        is the point of no return).
        """
        if self._draining or self._queue is None:
            raise AdmissionError(
                "daemon is draining; resubmit to the next incarnation",
                status=503,
                retry_after_s=self._retry_after_hint(),
            )
        normalized = self.parse_submission(body)
        depth = self._queue.qsize() + self._active
        if depth >= self.max_queue:
            if self.obs is not None:
                self.obs.inc("repro_service_jobs_total", event="rejected")
            raise AdmissionError(
                f"admission queue is full ({depth} in flight, "
                f"max {self.max_queue})",
                status=429,
                retry_after_s=self._retry_after_hint(),
            )
        with self._id_lock:
            job_id = normalized["job_id"]
            if job_id is None:
                job_id = f"job-{self._next_job_number:06d}"
                self._next_job_number += 1
            elif job_id in self.jobs:
                raise AdmissionError(
                    f"job id {job_id!r} already exists", status=409
                )
            record = JobRecord(
                job_id=job_id,
                spec=normalized["spec"],
                workers_hint=normalized["workers"],
                engine_pinned=normalized["engine_pinned"],
            )
            chaos = normalized["chaos"]
            if chaos is not None:
                record.chaos_schedule = {
                    int(shard): list(kinds)
                    for shard, kinds in chaos.get("schedule", {}).items()
                }
                record.chaos_seed = int(chaos.get("seed", 0))
            # Reserve the id before the (await-ing) journal write so a
            # concurrent duplicate submission cannot race past the check.
            self.jobs[job_id] = record
            self._order.append(job_id)
        if self.chaos is not None:
            self.chaos.fire("submit_pre_ack")
        journal_data: Dict[str, object] = {
            "spec": record.spec.to_dict(),
        }
        if record.chaos_schedule is not None:
            journal_data["chaos"] = {
                "schedule": {
                    str(shard): kinds
                    for shard, kinds in record.chaos_schedule.items()
                },
                "seed": record.chaos_seed,
            }
        if record.workers_hint is not None or record.engine_pinned:
            # Execution hints ride the journal so a restarted daemon
            # honours them; they never touch the campaign spec (and so
            # never perturb checkpoints or verdict payloads).
            journal_data["exec"] = {
                "workers": record.workers_hint,
                "engine_pinned": record.engine_pinned,
            }
        try:
            record.submitted_seq = await asyncio.get_running_loop(
            ).run_in_executor(
                None,
                lambda: self._journal_append(
                    "submit", job_id, **journal_data
                ),
            )
        except Exception:
            with self._id_lock:
                self.jobs.pop(job_id, None)
                if job_id in self._order:
                    self._order.remove(job_id)
            raise
        if self.chaos is not None:
            self.chaos.fire("submit_post_ack")
        self._queue.put_nowait(job_id)
        if self.obs is not None:
            self.obs.inc("repro_service_jobs_total", event="submitted")
        self._update_gauges()
        return record

    # -- queries -------------------------------------------------------------

    def job(self, job_id: str) -> Optional[JobRecord]:
        return self.jobs.get(job_id)

    def jobs_overview(self) -> Dict[str, object]:
        counts: Dict[str, int] = {state: 0 for state in JOB_STATES}
        for record in self.jobs.values():
            counts[record.state] = counts.get(record.state, 0) + 1
        return {
            "jobs": [
                self.jobs[job_id].status_dict() for job_id in self._order
            ],
            "counts": counts,
            "draining": self._draining,
        }

    def verdict(self, job_id: str) -> Optional[Dict[str, object]]:
        """The verified verdict payload for a finished job, else None."""
        record = self.jobs.get(job_id)
        if record is None or record.state != JOB_DONE:
            return None
        return read_checkpoint(self._verdict_path(job_id))

    def worker_pids(self) -> List[int]:
        """Live pool-worker PIDs across every running campaign.

        Empty while no job is on the parallel path; the chaos suite
        uses this to aim a SIGKILL at a worker *process* mid-shard.
        """
        with self._running_lock:
            campaigns = list(self._running.values())
        pids = set()
        for campaign in campaigns:
            pids.update(campaign.worker_pids())
        return sorted(pids)

    # -- retention -----------------------------------------------------------

    def _gc_verdicts(self) -> None:
        """Apply the retention policy to finished verdicts.

        Journal-first discipline: the ``gc`` entry is fsynced before
        the job directory is deleted, so a crash at any point leaves
        either a still-served verdict or a journaled expiry that replay
        honours — never a resurrected ghost.  Runs after every finish
        and once at boot (age policies are time-triggered).
        """
        if self.retention is None or self._journal is None:
            return
        with self._gc_lock:
            done = [
                self.jobs[job_id]
                for job_id in self._order
                if self.jobs[job_id].state == JOB_DONE
            ]
            # Completion order, stable across restarts: the journal seq
            # of each verdict entry.
            done.sort(key=lambda record: record.verdict_seq)
            if self.retention.kind == "count":
                keep = int(self.retention.value)
                victims = done[: max(0, len(done) - keep)]
            else:
                now = time.time()
                victims = [
                    record
                    for record in done
                    if record.finished_unix is not None
                    and now - record.finished_unix > self.retention.value
                ]
            for record in victims:
                self._expire(record)

    def _expire(self, record: JobRecord) -> None:
        self._journal_append(
            "gc",
            record.job_id,
            verdict_seq=record.verdict_seq,
            policy=self.retention.kind,
        )
        shutil.rmtree(self._job_dir(record.job_id), ignore_errors=True)
        record.state = JOB_EXPIRED
        if self.obs is not None:
            self.obs.inc("repro_service_jobs_total", event="expired")

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            if job_id is None:
                return
            record = self.jobs[job_id]
            self._active += 1
            self._update_gauges()
            try:
                await loop.run_in_executor(
                    self._executor, self._run_job, record
                )
            finally:
                self._active -= 1
                self._update_gauges()

    def _promoted(self, record: JobRecord) -> bool:
        """Whether this job executes on the process pool.

        Only jobs that did *not* pin an engine are promoted; engine
        choice never changes verdict bits (the parity contract every
        engine upholds), so promotion is purely an execution detail —
        the submitted spec, its checkpoints, and the verdict payload
        are untouched.
        """
        return not record.engine_pinned and self.core_budget > 1

    def _population_for(self, record: JobRecord):
        """Build the job's population, frame-backed for pool jobs.

        A frame-backed population carries its struct-of-arrays columns,
        which is what lets the parallel engine publish the fleet once
        over shared memory instead of pickling it into every worker.
        Generation parity is exact either way (PR 6's contract), so the
        verdict does not depend on which path is taken.
        """
        spec = record.spec
        if spec.max_resident_cpus > 0 or not self._promoted(record):
            return spec.build_population(self.obs)
        from ..fleet.frame import generate_fleet_frame
        from ..fleet.population import FleetSpec

        return generate_fleet_frame(
            FleetSpec(
                total_processors=spec.total_processors,
                seed=spec.fleet_seed,
                failure_rate_scale=spec.failure_rate_scale,
                escape_fraction=spec.escape_fraction,
            ),
            window=max(spec.shard_size, 256),
            obs=self.obs,
        )

    def _campaign_for(
        self, record: JobRecord, store: CheckpointStore,
        chaos: Optional[ChaosInjector],
    ) -> ResilientCampaign:
        overrides: Dict[str, object] = {}
        if self._promoted(record):
            # Workers start at 1; the pump loop leases the real count
            # from the governor before the first shard runs.  At one
            # worker the parallel engine routes through the in-process
            # vectorized path without ever building a pool, so small
            # jobs pay nothing for the promotion.
            overrides = {"engine": "parallel", "workers": 1}
        elif record.workers_hint is not None:
            # A pinned-parallel job still honours its (budget-capped)
            # workers ask; pinned serial engines ignore it.
            overrides = {"workers": record.workers_hint}
        if store.load_latest() is not None:
            return ResilientCampaign.resume(
                store,
                self.library,
                population=self._population_for(record),
                spec=record.spec,
                chaos=chaos,
                checkpoint_every=self.checkpoint_every,
                obs=self.obs,
                **overrides,
            )
        return ResilientCampaign(
            self._population_for(record),
            self.library,
            spec=record.spec,
            seed=record.spec.pipeline_seed,
            engine=str(overrides.get("engine", record.spec.engine)),
            shard_size=record.spec.shard_size,
            workers=overrides.get("workers"),  # type: ignore[arg-type]
            checkpoint_store=store,
            chaos=chaos,
            checkpoint_every=self.checkpoint_every,
            obs=self.obs,
        )

    def _run_job(self, record: JobRecord) -> None:
        """Drive one job to verdict/failure/suspension (worker thread)."""
        job_dir = self._job_dir(record.job_id)
        if self.chaos is not None:
            store: CheckpointStore = _HookedCheckpointStore(
                job_dir / "ckpt", self.chaos
            )
        else:
            store = CheckpointStore(job_dir / "ckpt")
        chaos_inj = (
            ChaosInjector(record.chaos_schedule, seed=record.chaos_seed)
            if record.chaos_schedule
            else None
        )
        resuming = store.load_latest() is not None
        record.state = JOB_RUNNING
        self._journal_append("start", record.job_id, resume=resuming)
        if self.obs is not None:
            self.obs.inc("repro_service_jobs_total", event="started")
        deadline = (
            time.monotonic() + self.job_timeout_s
            if self.job_timeout_s is not None
            else None
        )
        self.governor.register(record.job_id, hint=record.workers_hint)
        try:
            with span(self.obs, "service.job", job=record.job_id):
                while True:  # in-daemon supervisor loop (injected kills)
                    campaign = self._campaign_for(record, store, chaos_inj)
                    with self._running_lock:
                        self._running[record.job_id] = campaign
                    try:
                        suspended = self._pump(campaign, record, deadline)
                        if suspended:
                            # Drain: state stays journaled as running;
                            # the next incarnation re-queues and resumes.
                            return
                        self._finish(record, campaign)
                        return
                    except InjectedKillError as error:
                        record.restarts += 1
                        if record.restarts > self.max_job_restarts:
                            self._fail(
                                record,
                                f"killed {record.restarts} times: {error}",
                            )
                            return
                    except (CampaignAbortedError, ReproError) as error:
                        self._fail(record, str(error))
                        return
                    finally:
                        with self._running_lock:
                            self._running.pop(record.job_id, None)
                        campaign.close()
        finally:
            self.governor.release(record.job_id)
            record.workers_leased = 0

    def _pump(
        self,
        campaign: ResilientCampaign,
        record: JobRecord,
        deadline: Optional[float],
    ) -> bool:
        """Step the campaign until done; True means drain-suspended.

        On the parallel path, every iteration re-leases the job's
        worker count from the governor before stepping — the shard
        boundary *is* the re-arbitration point, so a shrinking job
        hands cores back while its neighbours are still mid-flight.
        """
        parallel = campaign.engine == "parallel"
        while True:
            if self._stop_event.is_set():
                campaign.checkpoint_now()
                return True
            if deadline is not None and time.monotonic() > deadline:
                raise CampaignAbortedError(
                    f"job exceeded its {self.job_timeout_s:.0f}s budget "
                    f"at cursor {campaign.cursor}"
                )
            if parallel:
                if campaign.parallel_degraded and not record.pool_degraded:
                    # The pool broke (worker killed, fork failure); the
                    # engine already reran the shard in-process with
                    # identical output.  Stickily stop leasing: a fresh
                    # pool for a job that just lost one helps nobody.
                    record.pool_degraded = True
                    self.governor.release(record.job_id)
                    if self.obs is not None:
                        self.obs.inc(
                            "repro_service_jobs_total",
                            event="pool_degraded",
                        )
                if record.pool_degraded:
                    # One worker routes every later range through the
                    # in-process vectorized engine; the retired pool is
                    # released rather than consulted (and re-tripped)
                    # on each remaining shard.
                    campaign.set_workers(1)
                    record.workers_leased = 1
                else:
                    target = self.governor.lease(
                        record.job_id, campaign.remaining
                    )
                    campaign.set_workers(target)
                    record.workers_leased = target
            started = time.monotonic()
            more = campaign.step()
            elapsed = time.monotonic() - started
            self._latency.record(elapsed)
            if self.obs is not None:
                self.obs.observe("repro_service_shard_seconds", elapsed)
            if self.chaos is not None:
                self.chaos.fire("shard_done")
            if not more:
                return False

    def _finish(
        self, record: JobRecord, campaign: ResilientCampaign
    ) -> None:
        payload = {
            "job_id": record.job_id,
            "spec": record.spec.to_dict(),
            "result": campaign.result.to_dict(),
            "health": campaign.health.to_dict(),
            "restarts": record.restarts,
        }
        # Verdict file first, then the journal entry that blesses it:
        # a crash between the two re-runs the (deterministic) job, it
        # never serves a verdict that does not exist.
        write_checkpoint(self._verdict_path(record.job_id), payload)
        finished_unix = time.time()
        record.verdict_seq = self._journal_append(
            "verdict",
            record.job_id,
            detections=len(campaign.result.detections),
            undetected=len(campaign.result.undetected_ids),
            finished_unix=finished_unix,
        )
        record.state = JOB_DONE
        record.finished_at = time.monotonic()
        record.finished_unix = finished_unix
        if self.obs is not None:
            self.obs.inc("repro_service_jobs_total", event="completed")
        self._gc_verdicts()

    def _fail(self, record: JobRecord, error: str) -> None:
        record.error = error
        self._journal_append("failed", record.job_id, error=error)
        record.state = JOB_FAILED
        record.finished_at = time.monotonic()
        if self.obs is not None:
            self.obs.inc("repro_service_jobs_total", event="failed")
