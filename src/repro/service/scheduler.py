"""Crash-tolerant campaign scheduler behind the ``repro serve`` API.

One :class:`CampaignScheduler` owns a state directory and keeps three
invariants no matter how the process dies:

* **No lost acknowledged job.**  A job is journaled (fsynced) before
  its submission is acknowledged; recovery replays the journal and
  re-queues everything not yet finished.
* **Bit-identical verdicts.**  Jobs execute as
  :class:`~repro.resilience.campaign.ResilientCampaign` shards with a
  per-job :class:`~repro.resilience.checkpoint.CheckpointStore`; a
  daemon SIGKILLed mid-campaign and restarted on the same state
  directory resumes each in-flight campaign at its exact cursor and
  draw position, so the final verdict equals an uninterrupted run's.
* **Bounded admission.**  The queue never exceeds ``max_queue``;
  beyond it submissions fail fast with a Retry-After hint instead of
  growing without bound (the HTTP layer maps this to 429).

State directory layout::

    <state-dir>/journal/journal-00000N.wal   write-ahead journal
    <state-dir>/jobs/<job-id>/ckpt/          campaign snapshots
    <state-dir>/jobs/<job-id>/verdict.json   CRC-checked verdict
    <state-dir>/endpoint.json                host/port/pid discovery

Shards run on a small thread pool (NumPy releases the GIL for the hot
kernels); the asyncio side never blocks on campaign work, and the
drain path stops the pool **between** shards, checkpoints, and leaves
the rest to the next incarnation.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import (
    AdmissionError,
    CampaignAbortedError,
    CheckpointError,
    ConfigurationError,
    ReproError,
)
from ..obs.context import span
from ..resilience.campaign import CampaignSpec, ResilientCampaign
from ..resilience.chaos import ChaosInjector, InjectedKillError
from ..resilience.checkpoint import (
    CheckpointStore,
    read_checkpoint,
    write_checkpoint,
)
from ..testing.library import TestcaseLibrary
from .chaos import ServiceChaos
from .journal import JournalWriter, ReplayReport, replay_journal

__all__ = [
    "JOB_STATES",
    "JobRecord",
    "CampaignScheduler",
    "VERDICT_FILE",
]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)

VERDICT_FILE = "verdict.json"

_JOB_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_AUTO_ID_RE = re.compile(r"^job-(\d{6,})$")

#: Spec keys a submission may carry besides the CampaignSpec fields.
_SUBMIT_EXTRAS = ("job_id", "chaos")


@dataclass
class JobRecord:
    """Scheduler-side view of one submitted campaign job."""

    job_id: str
    spec: CampaignSpec
    state: str = JOB_QUEUED
    submitted_seq: int = 0
    #: Campaign-level chaos schedule ({shard: [kinds]}), test-only.
    chaos_schedule: Optional[Dict[int, List[str]]] = None
    chaos_seed: int = 0
    error: Optional[str] = None
    restarts: int = 0
    recovered: bool = False
    finished_at: Optional[float] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def status_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "restarts": self.restarts,
            "recovered": self.recovered,
        }
        if self.error is not None:
            doc["error"] = self.error
        return doc


class _HookedCheckpointStore(CheckpointStore):
    """Checkpoint store that visits the daemon chaos hook after every
    durable save — the ``checkpoint_done`` kill point."""

    def __init__(self, directory, chaos: ServiceChaos, keep: int = 2):
        super().__init__(directory, keep=keep)
        self._service_chaos = chaos

    def save(self, payload):
        path = super().save(payload)
        self._service_chaos.fire("checkpoint_done")
        return path


class CampaignScheduler:
    """Journal-backed job queue + executor over resilient campaigns."""

    def __init__(
        self,
        state_dir,
        library: TestcaseLibrary,
        *,
        max_queue: int = 64,
        max_active: int = 1,
        checkpoint_every: int = 2,
        max_job_restarts: int = 8,
        job_timeout_s: Optional[float] = None,
        retry_after_s: float = 1.0,
        obs=None,
        chaos: Optional[ServiceChaos] = None,
    ):
        if max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if max_active < 1:
            raise ConfigurationError("max_active must be >= 1")
        self.state_dir = Path(state_dir)
        self.library = library
        self.max_queue = max_queue
        self.max_active = max_active
        self.checkpoint_every = checkpoint_every
        self.max_job_restarts = max_job_restarts
        self.job_timeout_s = job_timeout_s
        self.retry_after_s = retry_after_s
        self.obs = obs
        self.chaos = chaos
        self.jobs: Dict[str, JobRecord] = {}
        self.replay_report = ReplayReport()
        self._order: List[str] = []  # submission order, for recovery
        self._journal: Optional[JournalWriter] = None
        self._journal_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._next_job_number = 1
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._stop_event = threading.Event()
        self._draining = False
        self._active = 0
        self._recover()

    # -- recovery ------------------------------------------------------------

    def _job_dir(self, job_id: str) -> Path:
        return self.state_dir / "jobs" / job_id

    def _verdict_path(self, job_id: str) -> Path:
        return self._job_dir(job_id) / VERDICT_FILE

    def _recover(self) -> None:
        """Rebuild the job table from the journal, then open a fresh
        segment for this incarnation.  Runs before the API binds."""
        journal_dir = self.state_dir / "journal"
        entries = replay_journal(
            journal_dir, salvage=True, report=self.replay_report
        )
        max_seq = 0
        for entry in entries:
            max_seq = max(max_seq, entry.seq)
            job_id = entry.job
            if entry.kind == "submit" and job_id is not None:
                try:
                    spec = CampaignSpec.from_dict(entry.data["spec"])
                except (KeyError, TypeError, ConfigurationError) as error:
                    self.replay_report.problems.append(
                        f"job {job_id}: unusable journaled spec ({error})"
                    )
                    continue
                record = JobRecord(
                    job_id=job_id,
                    spec=spec,
                    submitted_seq=entry.seq,
                    recovered=True,
                )
                chaos = entry.data.get("chaos")
                if isinstance(chaos, dict):
                    record.chaos_schedule = {
                        int(shard): list(kinds)
                        for shard, kinds in chaos.get(
                            "schedule", {}
                        ).items()
                    }
                    record.chaos_seed = int(chaos.get("seed", 0))
                self.jobs[job_id] = record
                self._order.append(job_id)
                match = _AUTO_ID_RE.match(job_id)
                if match:
                    self._next_job_number = max(
                        self._next_job_number, int(match.group(1)) + 1
                    )
            elif entry.kind == "start" and job_id in self.jobs:
                self.jobs[job_id].state = JOB_RUNNING
            elif entry.kind == "verdict" and job_id in self.jobs:
                self.jobs[job_id].state = JOB_DONE
            elif entry.kind == "failed" and job_id in self.jobs:
                record = self.jobs[job_id]
                record.state = JOB_FAILED
                record.error = str(entry.data.get("error", "unknown"))
        # A journaled verdict is only as good as the verdict file it
        # points at; a crash between journal append and file landing is
        # impossible (the file is written first), but bit rot is not.
        for job_id in self._order:
            record = self.jobs[job_id]
            if record.state == JOB_DONE:
                try:
                    read_checkpoint(self._verdict_path(job_id))
                except CheckpointError as error:
                    self.replay_report.problems.append(
                        f"job {job_id}: verdict file unusable ({error}); "
                        f"re-running"
                    )
                    record.state = JOB_QUEUED
            elif record.state == JOB_RUNNING:
                # Interrupted mid-campaign: re-queue; its checkpoint
                # store carries the resume point.
                record.state = JOB_QUEUED
        self._journal = JournalWriter(
            journal_dir,
            start_seq=max_seq + 1,
            post_append=(
                self.chaos.on_journal_append if self.chaos is not None
                else None
            ),
        )
        if self.obs is not None:
            for _ in self.replay_report.problems:
                self.obs.inc(
                    "repro_service_journal_appends_total", kind="salvaged"
                )

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def pending_jobs(self) -> List[str]:
        """Unfinished jobs in submission order (recovery work list)."""
        return [
            job_id
            for job_id in self._order
            if self.jobs[job_id].state == JOB_QUEUED
        ]

    async def start(self) -> None:
        """Spawn workers and enqueue every unfinished journaled job."""
        self._queue = asyncio.Queue()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_active,
            thread_name_prefix="repro-job",
        )
        for job_id in self.pending_jobs():
            self._queue.put_nowait(job_id)
            if self.obs is not None:
                self.obs.inc("repro_service_jobs_total", event="resumed")
        self._update_gauges()
        loop = asyncio.get_running_loop()
        for _ in range(self.max_active):
            self._workers.append(loop.create_task(self._worker()))

    async def drain(self) -> None:
        """Graceful stop: no new work, checkpoint in-flight campaigns.

        Safe to call more than once.  Returns when every worker has
        parked; queued jobs stay journaled for the next incarnation.
        """
        if self._draining:
            return
        self._draining = True
        started = time.monotonic()
        self._stop_event.set()
        if self.chaos is not None:
            self.chaos.fire("drain")
        if self._queue is not None:
            for _ in self._workers:
                self._queue.put_nowait(None)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        with self._journal_lock:
            if self._journal is not None:
                self._journal.close()
        if self.obs is not None:
            self.obs.set_gauge(
                "repro_service_drain_seconds", time.monotonic() - started
            )
            self._update_gauges()

    # -- admission -----------------------------------------------------------

    def _update_gauges(self) -> None:
        if self.obs is None:
            return
        depth = self._queue.qsize() if self._queue is not None else len(
            self.pending_jobs()
        )
        self.obs.set_gauge("repro_service_queue_depth", depth)
        self.obs.set_gauge("repro_service_active_jobs", self._active)

    def _journal_append(self, kind: str, job_id: str, **data) -> int:
        with self._journal_lock:
            if self._journal is None:
                raise AdmissionError(
                    "journal is closed (daemon draining)", status=503
                )
            seq = self._journal.append(kind, job=job_id, **data)
        if self.obs is not None:
            self.obs.inc("repro_service_journal_appends_total", kind=kind)
        return seq

    def parse_submission(self, body: Dict[str, object]) -> Dict[str, object]:
        """Validate a ``/submit`` body; returns normalized fields.

        Raises :class:`ConfigurationError` (HTTP 400) on anything the
        spec layer rejects, :class:`AdmissionError` on service-level
        violations.
        """
        if not isinstance(body, dict):
            raise ConfigurationError("submission body must be a JSON object")
        unknown = set(body) - set(_SUBMIT_EXTRAS) - {
            spec_field.name
            for spec_field in CampaignSpec.__dataclass_fields__.values()
        }
        if unknown:
            raise ConfigurationError(
                f"unknown submission fields: {sorted(unknown)}"
            )
        spec_fields = {
            key: value
            for key, value in body.items()
            if key not in _SUBMIT_EXTRAS
        }
        spec = CampaignSpec.from_dict(spec_fields)
        job_id = body.get("job_id")
        if job_id is not None:
            if not isinstance(job_id, str) or not _JOB_ID_RE.match(job_id):
                raise ConfigurationError(
                    "job_id must match [A-Za-z0-9][A-Za-z0-9._-]{0,63}"
                )
        chaos = body.get("chaos")
        if chaos is not None:
            if not isinstance(chaos, dict) or not isinstance(
                chaos.get("schedule", {}), dict
            ):
                raise ConfigurationError(
                    "chaos must be {'schedule': {shard: [kinds]}, 'seed': n}"
                )
        return {"spec": spec, "job_id": job_id, "chaos": chaos}

    async def submit(self, body: Dict[str, object]) -> JobRecord:
        """Admit one job: validate, journal (fsync), queue, return.

        The returned record is the acknowledgment; it must not be sent
        to the client before this coroutine finishes (the journal write
        is the point of no return).
        """
        if self._draining or self._queue is None:
            raise AdmissionError(
                "daemon is draining; resubmit to the next incarnation",
                status=503,
                retry_after_s=self.retry_after_s,
            )
        normalized = self.parse_submission(body)
        depth = self._queue.qsize() + self._active
        if depth >= self.max_queue:
            if self.obs is not None:
                self.obs.inc("repro_service_jobs_total", event="rejected")
            raise AdmissionError(
                f"admission queue is full ({depth} in flight, "
                f"max {self.max_queue})",
                status=429,
                retry_after_s=self.retry_after_s,
            )
        with self._id_lock:
            job_id = normalized["job_id"]
            if job_id is None:
                job_id = f"job-{self._next_job_number:06d}"
                self._next_job_number += 1
            elif job_id in self.jobs:
                raise AdmissionError(
                    f"job id {job_id!r} already exists", status=409
                )
            record = JobRecord(job_id=job_id, spec=normalized["spec"])
            chaos = normalized["chaos"]
            if chaos is not None:
                record.chaos_schedule = {
                    int(shard): list(kinds)
                    for shard, kinds in chaos.get("schedule", {}).items()
                }
                record.chaos_seed = int(chaos.get("seed", 0))
            # Reserve the id before the (await-ing) journal write so a
            # concurrent duplicate submission cannot race past the check.
            self.jobs[job_id] = record
            self._order.append(job_id)
        if self.chaos is not None:
            self.chaos.fire("submit_pre_ack")
        journal_data: Dict[str, object] = {
            "spec": record.spec.to_dict(),
        }
        if record.chaos_schedule is not None:
            journal_data["chaos"] = {
                "schedule": {
                    str(shard): kinds
                    for shard, kinds in record.chaos_schedule.items()
                },
                "seed": record.chaos_seed,
            }
        try:
            record.submitted_seq = await asyncio.get_running_loop(
            ).run_in_executor(
                None,
                lambda: self._journal_append(
                    "submit", job_id, **journal_data
                ),
            )
        except Exception:
            with self._id_lock:
                self.jobs.pop(job_id, None)
                if job_id in self._order:
                    self._order.remove(job_id)
            raise
        if self.chaos is not None:
            self.chaos.fire("submit_post_ack")
        self._queue.put_nowait(job_id)
        if self.obs is not None:
            self.obs.inc("repro_service_jobs_total", event="submitted")
        self._update_gauges()
        return record

    # -- queries -------------------------------------------------------------

    def job(self, job_id: str) -> Optional[JobRecord]:
        return self.jobs.get(job_id)

    def jobs_overview(self) -> Dict[str, object]:
        counts: Dict[str, int] = {state: 0 for state in JOB_STATES}
        for record in self.jobs.values():
            counts[record.state] = counts.get(record.state, 0) + 1
        return {
            "jobs": [
                self.jobs[job_id].status_dict() for job_id in self._order
            ],
            "counts": counts,
            "draining": self._draining,
        }

    def verdict(self, job_id: str) -> Optional[Dict[str, object]]:
        """The verified verdict payload for a finished job, else None."""
        record = self.jobs.get(job_id)
        if record is None or record.state != JOB_DONE:
            return None
        return read_checkpoint(self._verdict_path(job_id))

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            if job_id is None:
                return
            record = self.jobs[job_id]
            self._active += 1
            self._update_gauges()
            try:
                await loop.run_in_executor(
                    self._executor, self._run_job, record
                )
            finally:
                self._active -= 1
                self._update_gauges()

    def _campaign_for(
        self, record: JobRecord, store: CheckpointStore,
        chaos: Optional[ChaosInjector],
    ) -> ResilientCampaign:
        if store.load_latest() is not None:
            return ResilientCampaign.resume(
                store,
                self.library,
                spec=record.spec,
                chaos=chaos,
                checkpoint_every=self.checkpoint_every,
                obs=self.obs,
            )
        return ResilientCampaign.from_spec(
            record.spec,
            self.library,
            checkpoint_store=store,
            chaos=chaos,
            checkpoint_every=self.checkpoint_every,
            obs=self.obs,
        )

    def _run_job(self, record: JobRecord) -> None:
        """Drive one job to verdict/failure/suspension (worker thread)."""
        job_dir = self._job_dir(record.job_id)
        if self.chaos is not None:
            store: CheckpointStore = _HookedCheckpointStore(
                job_dir / "ckpt", self.chaos
            )
        else:
            store = CheckpointStore(job_dir / "ckpt")
        chaos_inj = (
            ChaosInjector(record.chaos_schedule, seed=record.chaos_seed)
            if record.chaos_schedule
            else None
        )
        resuming = store.load_latest() is not None
        record.state = JOB_RUNNING
        self._journal_append("start", record.job_id, resume=resuming)
        if self.obs is not None:
            self.obs.inc("repro_service_jobs_total", event="started")
        deadline = (
            time.monotonic() + self.job_timeout_s
            if self.job_timeout_s is not None
            else None
        )
        with span(self.obs, "service.job", job=record.job_id):
            while True:  # in-daemon supervisor loop (injected kills)
                campaign = self._campaign_for(record, store, chaos_inj)
                try:
                    suspended = self._pump(campaign, record, deadline)
                    if suspended:
                        # Drain: state stays journaled as running; the
                        # next incarnation re-queues and resumes.
                        return
                    self._finish(record, campaign)
                    return
                except InjectedKillError as error:
                    record.restarts += 1
                    if record.restarts > self.max_job_restarts:
                        self._fail(
                            record,
                            f"killed {record.restarts} times: {error}",
                        )
                        return
                except (CampaignAbortedError, ReproError) as error:
                    self._fail(record, str(error))
                    return
                finally:
                    campaign.close()

    def _pump(
        self,
        campaign: ResilientCampaign,
        record: JobRecord,
        deadline: Optional[float],
    ) -> bool:
        """Step the campaign until done; True means drain-suspended."""
        while True:
            if self._stop_event.is_set():
                campaign.checkpoint_now()
                return True
            if deadline is not None and time.monotonic() > deadline:
                raise CampaignAbortedError(
                    f"job exceeded its {self.job_timeout_s:.0f}s budget "
                    f"at cursor {campaign.cursor}"
                )
            more = campaign.step()
            if self.chaos is not None:
                self.chaos.fire("shard_done")
            if not more:
                return False

    def _finish(
        self, record: JobRecord, campaign: ResilientCampaign
    ) -> None:
        payload = {
            "job_id": record.job_id,
            "spec": record.spec.to_dict(),
            "result": campaign.result.to_dict(),
            "health": campaign.health.to_dict(),
            "restarts": record.restarts,
        }
        # Verdict file first, then the journal entry that blesses it:
        # a crash between the two re-runs the (deterministic) job, it
        # never serves a verdict that does not exist.
        write_checkpoint(self._verdict_path(record.job_id), payload)
        self._journal_append(
            "verdict",
            record.job_id,
            detections=len(campaign.result.detections),
            undetected=len(campaign.result.undetected_ids),
        )
        record.state = JOB_DONE
        record.finished_at = time.monotonic()
        if self.obs is not None:
            self.obs.inc("repro_service_jobs_total", event="completed")

    def _fail(self, record: JobRecord, error: str) -> None:
        record.error = error
        self._journal_append("failed", record.job_id, error=error)
        record.state = JOB_FAILED
        record.finished_at = time.monotonic()
        if self.obs is not None:
            self.obs.inc("repro_service_jobs_total", event="failed")
