"""Blocking HTTP client for the ``repro serve`` daemon.

Built on :mod:`http.client` so scripts, tests, and the CI chaos driver
can talk to the daemon without any dependency beyond the standard
library.  One :class:`ServiceClient` opens a fresh connection per call —
deliberately boring, so a daemon kill mid-request surfaces as an
ordinary :class:`ConnectionError` the caller retries, never a wedged
keep-alive socket.

:class:`Rejected` carries the 429/503 admission answers (including the
server's ``Retry-After``), keeping backpressure a typed outcome rather
than an exception-message string match.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..errors import ServiceError
from .server import ENDPOINT_FILE

__all__ = ["Rejected", "ServiceClient", "read_endpoint"]


class Rejected(ServiceError):
    """The daemon refused admission (429 saturated / 503 draining)."""

    def __init__(self, status: int, message: str, retry_after_s: float):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


@dataclass
class HttpReply:
    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Dict[str, object]:
        return json.loads(self.body.decode("utf-8"))


def read_endpoint(state_dir) -> Tuple[str, int, int]:
    """(host, port, pid) from a state directory's discovery file."""
    path = Path(state_dir) / ENDPOINT_FILE
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise ServiceError(
            f"no usable endpoint file at {path}: {error}"
        ) from error
    return str(doc["host"]), int(doc["port"]), int(doc["pid"])


class ServiceClient:
    """Talk to one daemon at ``host:port``."""

    def __init__(self, host: str, port: int, *, timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    @classmethod
    def from_state_dir(cls, state_dir, **kwargs) -> "ServiceClient":
        host, port, _pid = read_endpoint(state_dir)
        return cls(host, port, **kwargs)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
    ) -> HttpReply:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return HttpReply(
                status=response.status,
                headers={
                    name.lower(): value
                    for name, value in response.getheaders()
                },
                body=response.read(),
            )
        finally:
            connection.close()

    # -- routes --------------------------------------------------------------

    def healthz(self) -> bool:
        try:
            return self._request("GET", "/healthz").status == 200
        except (ConnectionError, socket.timeout, OSError):
            return False

    def readyz(self) -> bool:
        try:
            return self._request("GET", "/readyz").status == 200
        except (ConnectionError, socket.timeout, OSError):
            return False

    def wait_ready(self, timeout_s: float = 30.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.readyz():
                return
            time.sleep(0.05)
        raise ServiceError(
            f"daemon at {self.host}:{self.port} not ready "
            f"within {timeout_s:.0f}s"
        )

    def metrics_text(self) -> str:
        reply = self._request("GET", "/metrics")
        if reply.status != 200:
            raise ServiceError(f"/metrics answered {reply.status}")
        return reply.body.decode("utf-8")

    def submit(self, submission: Dict[str, object]) -> Dict[str, object]:
        """202 → ack dict ({job_id, state, seq}); 429/503 → Rejected;
        anything else → ServiceError."""
        reply = self._request("POST", "/submit", body=submission)
        if reply.status == 202:
            return reply.json()
        if reply.status in (429, 503):
            try:
                message = str(reply.json().get("error", ""))
            except ValueError:
                message = reply.body.decode("utf-8", "replace")
            raise Rejected(
                reply.status,
                message,
                float(reply.headers.get("retry-after", 1)),
            )
        raise ServiceError(
            f"/submit answered {reply.status}: "
            f"{reply.body.decode('utf-8', 'replace').strip()}"
        )

    def submit_with_retry(
        self,
        submission: Dict[str, object],
        *,
        timeout_s: float = 120.0,
    ) -> Dict[str, object]:
        """Submit, honoring Retry-After on 429 until admitted or timeout.

        503 (draining) is not retried here — that daemon incarnation
        will never admit the job; the caller decides what restart means.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return self.submit(submission)
            except Rejected as rejection:
                if rejection.status != 429:
                    raise
                if time.monotonic() >= deadline:
                    raise
                time.sleep(
                    min(rejection.retry_after_s, deadline - time.monotonic())
                )

    def jobs(self) -> Dict[str, object]:
        reply = self._request("GET", "/jobs")
        if reply.status != 200:
            raise ServiceError(f"/jobs answered {reply.status}")
        return reply.json()

    def timeseries(
        self,
        name: Optional[str] = None,
        tier: Optional[str] = None,
        since: Optional[float] = None,
    ) -> Dict[str, object]:
        """Scrape history from ``/timeseries`` (name is a key prefix)."""
        params = []
        if name is not None:
            params.append(f"name={name}")
        if tier is not None:
            params.append(f"tier={tier}")
        if since is not None:
            params.append(f"since={since}")
        path = "/timeseries" + ("?" + "&".join(params) if params else "")
        reply = self._request("GET", path)
        if reply.status != 200:
            raise ServiceError(f"/timeseries answered {reply.status}")
        return reply.json()

    def alerts(self) -> Dict[str, object]:
        """Health-rule firing state from ``/alerts``."""
        reply = self._request("GET", "/alerts")
        if reply.status != 200:
            raise ServiceError(f"/alerts answered {reply.status}")
        return reply.json()

    def job(self, job_id: str) -> Optional[Dict[str, object]]:
        reply = self._request("GET", f"/jobs/{job_id}")
        if reply.status == 404:
            return None
        if reply.status != 200:
            raise ServiceError(f"/jobs/{job_id} answered {reply.status}")
        return reply.json()

    def verdict(self, job_id: str) -> Optional[Dict[str, object]]:
        """The verdict document once the job is done; None while pending.

        Raises :class:`ServiceError` for unknown jobs and failed jobs —
        a failed job will never produce a verdict, so polling on is
        pointless.
        """
        reply = self._request("GET", f"/verdicts/{job_id}")
        if reply.status == 404:
            raise ServiceError(f"job {job_id} is unknown to the daemon")
        if reply.status == 410:
            raise ServiceError(
                f"verdict for {job_id} was expired by the retention "
                f"policy; it will not come back"
            )
        if reply.status != 200:
            raise ServiceError(
                f"/verdicts/{job_id} answered {reply.status}"
            )
        doc = reply.json()
        status = doc.get("status")
        if status == "done":
            return doc
        if status == "failed":
            raise ServiceError(
                f"job {job_id} failed: {doc.get('error', 'unknown error')}"
            )
        return None

    def wait_verdict(
        self,
        job_id: str,
        *,
        timeout_s: float = 120.0,
        poll_s: float = 0.05,
    ) -> Dict[str, object]:
        """Poll until the verdict lands; tolerates the daemon dying and
        coming back mid-poll (connection errors are treated as
        not-yet)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                verdict = self.verdict(job_id)
            except (ConnectionError, socket.timeout, OSError):
                verdict = None
            if verdict is not None:
                return verdict
            time.sleep(poll_s)
        raise ServiceError(
            f"no verdict for {job_id} within {timeout_s:.0f}s"
        )
