"""Write-ahead journal for the ``repro serve`` daemon.

Every externally visible state change of the service — a job accepted,
started, finished, failed — is appended here and **fsynced before it is
acknowledged**.  The daemon's crash contract follows directly:

* a client that received a 202 for ``/submit`` is guaranteed the job is
  journaled, so a SIGKILLed daemon restarted on the same state
  directory rediscovers and finishes it;
* a client whose connection died before the ack learns nothing, and
  correspondingly the journal may or may not carry the job — either
  outcome is consistent.

The on-disk format reuses the checkpoint-container conventions the rest
of the tree already trusts (:mod:`repro.resilience.checkpoint`,
:mod:`repro.obs.tracing`): append-only JSONL **segments** named
``journal-000001.wal``, each starting with a header line and carrying
one canonical-JSON entry per line whose ``crc32`` field seals the
entry's canonical encoding.  Each daemon incarnation opens a fresh
segment, so the segment sequence doubles as a boot history.

Crash tolerance on the read side mirrors the writer's failure modes: a
torn **final** line of any segment is dropped (that was the in-flight
append when that incarnation died — by definition unacknowledged), while
corruption anywhere else raises
:class:`~repro.errors.JournalCorruptError` unless the caller opts into
salvage mode, which truncates replay of that segment at the first bad
line and reports the damage.

Entry schema (the ``data`` payload is per-kind)::

    {"seq": 17, "kind": "submit", "job": "job-000004",
     "data": {...}, "crc32": 269356693}

``seq`` is a global, strictly increasing acknowledgment counter that
survives restarts; replay derives the next one.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..errors import JournalCorruptError, JournalError
from ..fsutil import fsync_directory

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "JournalEntry",
    "JournalWriter",
    "ReplayReport",
    "replay_journal",
]

JOURNAL_FORMAT = "repro-service-journal"
JOURNAL_VERSION = 1

_PREFIX = "journal-"
_SUFFIX = ".wal"


def _canonical(record: Dict[str, object]) -> bytes:
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


@dataclass(frozen=True)
class JournalEntry:
    """One verified journal record."""

    seq: int
    kind: str
    job: Optional[str]
    data: Dict[str, object]

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "JournalEntry":
        return cls(
            seq=int(record["seq"]),
            kind=str(record["kind"]),
            job=record.get("job"),  # type: ignore[arg-type]
            data=dict(record.get("data", {})),  # type: ignore[arg-type]
        )


@dataclass
class ReplayReport:
    """What :func:`replay_journal` saw besides the entries."""

    segments: int = 0
    #: Human-readable descriptions of tolerated damage (torn tails,
    #: salvage-mode truncations) — surfaced into the daemon's health
    #: telemetry so silent repair never goes unrecorded.
    problems: List[str] = field(default_factory=list)


class JournalWriter:
    """Appends acknowledged state changes to this incarnation's segment.

    The segment file is created lazily on the first append; creation
    fsyncs the journal directory so the new entry name itself is
    durable.  Every append is flushed and fsynced before :meth:`append`
    returns — the returned sequence number is the acknowledgment token.

    ``post_append`` is the chaos hook: the service test suite installs
    a callable here to tear the freshly written tail or kill the
    process at the exact pre/post-durability boundaries.
    """

    def __init__(
        self,
        directory: os.PathLike,
        *,
        start_seq: int = 1,
        segment_index: Optional[int] = None,
        post_append: Optional[Callable[[Path, int], None]] = None,
    ):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise JournalError(
                f"cannot create journal directory {directory}: {error}"
            ) from error
        if segment_index is None:
            segment_index = _next_segment_index(self.directory)
        self.path = self.directory / f"{_PREFIX}{segment_index:06d}{_SUFFIX}"
        self._seq = int(start_seq)
        self._handle = None
        self.post_append = post_append

    @property
    def next_seq(self) -> int:
        return self._seq

    def _open(self) -> None:
        try:
            self._handle = open(self.path, "x", encoding="utf-8")
        except OSError as error:
            raise JournalError(
                f"cannot create journal segment {self.path}: {error}"
            ) from error
        header = {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION}
        self._handle.write(_canonical(header).decode("utf-8") + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        fsync_directory(self.directory)

    def append(
        self, kind: str, job: Optional[str] = None, **data: object
    ) -> int:
        """Durably record one entry; returns its sequence number.

        When this returns, the entry is fsynced — it is safe to
        acknowledge the corresponding request to a client.
        """
        if self._handle is None:
            self._open()
        seq = self._seq
        record: Dict[str, object] = {"seq": seq, "kind": kind, "data": data}
        if job is not None:
            record["job"] = job
        body = _canonical(record)
        sealed = dict(record)
        sealed["crc32"] = zlib.crc32(body)
        line = _canonical(sealed).decode("utf-8") + "\n"
        try:
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as error:
            raise JournalError(
                f"cannot append to journal {self.path}: {error}"
            ) from error
        self._seq = seq + 1
        if self.post_append is not None:
            self.post_append(self.path, seq)
        return seq

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            finally:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def segment_paths(directory: os.PathLike) -> List[Path]:
    """Existing journal segments, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        (
            path
            for path in directory.glob(f"{_PREFIX}*{_SUFFIX}")
            if path.is_file()
        ),
        key=lambda path: path.name,
    )


def _next_segment_index(directory: Path) -> int:
    existing = segment_paths(directory)
    if not existing:
        return 1
    stem = existing[-1].name[len(_PREFIX):-len(_SUFFIX)]
    try:
        return int(stem) + 1
    except ValueError:
        return len(existing) + 1


def _replay_segment(
    path: Path, entries: List[JournalEntry], report: ReplayReport,
    salvage: bool,
) -> None:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as error:
        raise JournalError(
            f"cannot read journal segment {path}: {error}"
        ) from error
    if not lines:
        # A daemon that died between segment creation and the header
        # flush; nothing was acknowledged through this segment.
        report.problems.append(f"{path.name}: empty segment")
        return
    try:
        header = json.loads(lines[0])
    except ValueError:
        header = None
    if (
        not isinstance(header, dict)
        or header.get("format") != JOURNAL_FORMAT
    ):
        # A torn header means the first append never completed its
        # fsync — again nothing acknowledged.
        report.problems.append(f"{path.name}: torn/missing header")
        return
    if header.get("version") != JOURNAL_VERSION:
        raise JournalCorruptError(
            f"journal segment {path} has unsupported version "
            f"{header.get('version')!r}"
        )
    last = len(lines) - 1
    for index, line in enumerate(lines[1:], start=1):
        if not line.strip():
            continue
        tail = index == last
        damage: Optional[str] = None
        record = None
        try:
            record = json.loads(line)
        except ValueError:
            damage = "not valid JSON"
        if damage is None and (
            not isinstance(record, dict) or "crc32" not in record
        ):
            damage = "lacks a crc32 seal"
        if damage is None:
            claimed = record.pop("crc32")
            if zlib.crc32(_canonical(record)) != claimed:
                damage = "failed its CRC-32 self-check"
        if damage is None:
            try:
                entries.append(JournalEntry.from_record(record))
            except (KeyError, TypeError, ValueError):
                damage = "has a malformed entry body"
        if damage is None:
            continue
        if tail:
            # The in-flight append of a crashed incarnation — never
            # acknowledged, safe to drop.
            report.problems.append(f"{path.name}: torn tail dropped")
            return
        if salvage:
            report.problems.append(
                f"{path.name}: line {index + 1} {damage}; segment "
                f"truncated there"
            )
            return
        raise JournalCorruptError(
            f"journal segment {path} line {index + 1} {damage}"
        )


def replay_journal(
    directory: os.PathLike,
    *,
    salvage: bool = False,
    report: Optional[ReplayReport] = None,
) -> List[JournalEntry]:
    """Verified entries from every segment, in acknowledgment order.

    Entries are returned sorted by ``seq`` (segments are written
    sequentially, so this is also file order).  ``salvage=True`` keeps
    going past mid-segment corruption by truncating that segment's
    replay; the default raises, because losing an *acknowledged* entry
    is exactly what the journal exists to prevent.
    """
    report = report if report is not None else ReplayReport()
    entries: List[JournalEntry] = []
    for path in segment_paths(directory):
        report.segments += 1
        _replay_segment(path, entries, report, salvage)
    entries.sort(key=lambda entry: entry.seq)
    return entries
