"""Vectorised fleet campaign engine.

:class:`VectorizedTestPipeline` runs the same 32-month staged campaign
as :class:`~repro.fleet.pipeline.TestPipeline`, but lowers the faulty
population into struct-of-arrays form and evaluates the closed-form
per-stage detection law as NumPy matrix ops over the whole population at
once.  The output is **bit-identical** to the scalar engine under the
same seed — same :class:`Detection` objects, same undetected ids, in the
same order — which the parity tests and the committed benchmark both
assert.

Exact replay is the interesting part.  The scalar engine consumes
randomness from two kinds of streams:

* one *behaviour* substream per (defect, testcase) setting, drawn inside
  ``TriggerModel.behaviour`` (a uniform for ``tmin`` and a normal for
  ``log10_f0``).  Because ``tmin`` gates whether a stage contributes any
  detection probability at all — and therefore whether the pipeline
  stream consumes a Bernoulli draw — these values must be replayed *bit
  exactly*.  :mod:`repro.perf.exact_rng` reproduces NumPy's
  ``SeedSequence``/PCG64/ziggurat pipeline across all settings in a few
  array ops.
* the single ``substream(seed, "pipeline")`` Bernoulli stream.  Draw
  *count* depends on the gates above; once those are exact, the draws
  are pulled from the real generator in blocks (``Generator.random(n)``
  emits the same doubles as ``n`` scalar calls).

Floating-point op *order* is mirrored too: per-row expectations
accumulate with ordered ``np.add.at`` (element-by-element, matching the
scalar dict accumulation), and transcendentals that NumPy vectorises
with different last-ulp results than libm (``10 ** x``, ``x ** q``,
``exp``) are evaluated scalar-wise exactly as the scalar engine does.

Scope note: the per-stage expectation cache of the scalar engine is
keyed by stage *name*; like that cache, this engine assumes same-named
stages share their parameters (true for any sane `PipelineConfig`).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..perf.exact_rng import (
    VectorPCG64,
    derive_from_hasher,
    encode_names,
    seed_hasher,
)
from ..cpu.defects import Defect
from ..faults.trigger import TriggerModel
from ..testing.library import TestcaseLibrary
from .pipeline import (
    Detection,
    FleetStudyResult,
    PipelineConfig,
    TestPipeline,
    record_range_metrics,
)
from .population import FleetPopulation

__all__ = ["VectorizedTestPipeline"]


class VectorizedTestPipeline:
    """Batch campaign engine, detection-for-detection equal to scalar."""

    __test__ = False  # not a pytest test class

    def __init__(
        self,
        population: FleetPopulation,
        library: TestcaseLibrary,
        config: Optional[PipelineConfig] = None,
        trigger_model: Optional[TriggerModel] = None,
        seed: int = 11,
        *,
        obs=None,
    ):
        # The scalar pipeline provides setting enumeration, the stage
        # schedule, and the seeded Bernoulli stream; this engine replaces
        # only how the per-stage expectations are *computed*.
        self._scalar = TestPipeline(
            population, library, config, trigger_model, seed, obs=obs
        )
        #: Optional :class:`repro.obs.Observability` context; ``None``
        #: disables telemetry.  Ranges replayed by *this* engine are
        #: accounted under ``obs_label`` ("vectorized" here; the
        #: parallel engine relabels its worker engines "parallel"), so
        #: mixed-engine campaigns keep exact per-engine totals.
        self.obs = obs
        self.obs_label = "vectorized"
        self.population = population
        self.library = library
        self.config = self._scalar.config
        self.trigger = self._scalar.trigger
        # Settings skeletons per match signature: defects sampled from
        # the same instruction pool share their testcase rows.
        self._skeletons: Dict[object, Tuple] = {}
        # The lowering is deterministic and consumes no pipeline-stream
        # draws, so blocks are computed once per CPU range and reused
        # across run_range calls (sharded campaigns, checkpoint resume,
        # parallel shard workers).  The stage schedule is
        # population-independent and cached separately.
        self._schedule_cache: Optional[Tuple] = None
        self._blocks: Dict[Tuple[int, int], Tuple] = {}
        # Named scratch buffers for the per-kind expectation loop.
        # Lowering is called once per (shard, kind); without reuse each
        # call allocates five O(pairs)+O(rows) temporaries.  Buffers
        # grow monotonically and are sliced per call, so steady-state
        # lowering allocates nothing.
        self._scratch: Dict[str, np.ndarray] = {}

    def _scratch_buffer(self, name: str, size: int) -> np.ndarray:
        """A float64 scratch array of ``size``, reused across calls."""
        buf = self._scratch.get(name)
        if buf is None or len(buf) < size:
            buf = np.empty(max(size, 1), dtype=np.float64)
            self._scratch[name] = buf
        return buf[:size]

    # -- lowering ----------------------------------------------------------

    def _skeleton(self, defect: Defect) -> Tuple:
        """Shared per-signature rows: (pair_tcs, row_pair, row_usage,
        encoded_tcs, stress_by_exponent).

        Rows below the usage floor can never contribute (the trigger law
        zeroes them at every temperature), so they are dropped here;
        pairs are ordered by their first *qualifying* row, which is
        exactly the scalar engine's dict insertion order.  The testcase
        ids are pre-encoded for seed derivation, and per-row usage
        stress is cached per stress exponent (see
        :meth:`_skeleton_stress`), since both depend only on the match
        signature.
        """
        # Computation defects always name instructions, consistency
        # defects never do (enforced by Defect.__post_init__), which
        # sidesteps the set-building ``is_consistency`` property here.
        if defect.instructions:
            key = ("i", defect.instructions)
        else:
            key = ("c", defect.features)
        cached = self._skeletons.get(key)
        if cached is not None:
            return cached
        floor = self.trigger.usage_floor
        pair_index: Dict[str, int] = {}
        pair_tcs: List[str] = []
        row_pair: List[int] = []
        row_usage: List[float] = []
        for testcase, usage in self._scalar._matching_settings(defect):
            if usage < floor:
                continue
            tc_id = testcase.testcase_id
            index = pair_index.get(tc_id)
            if index is None:
                index = len(pair_tcs)
                pair_index[tc_id] = index
                pair_tcs.append(tc_id)
            row_pair.append(index)
            row_usage.append(usage)
        cached = (pair_tcs, row_pair, row_usage, encode_names(pair_tcs), {})
        self._skeletons[key] = cached
        return cached

    def _skeleton_stress(self, skeleton: Tuple, exponent: float) -> List[float]:
        """Per-row ``(usage / reference) ** exponent``, scalar pow.

        Evaluated with Python's ``**`` exactly as the scalar trigger law
        does, once per (signature, exponent) instead of once per row per
        processor.
        """
        cache = skeleton[4]
        rows = cache.get(exponent)
        if rows is None:
            reference = self.trigger.reference_usage
            rows = [(usage / reference) ** exponent for usage in skeleton[2]]
            cache[exponent] = rows
        return rows

    # -- the campaign ------------------------------------------------------

    def run(self) -> FleetStudyResult:
        result = FleetStudyResult(
            population_total=self.population.total,
            arch_counts=dict(self.population.arch_counts),
        )
        self.run_range(0, len(self.population.faulty), result)
        return result

    def _schedule(self) -> Tuple:
        """``(schedule, kind_temp, kind_time)`` — stage kinds + calendar.

        Distinct stage kinds in first-occurrence order (the scalar
        engine caches expectations per stage name).  A pure function of
        the pipeline config, shared by every lowered block.
        """
        if self._schedule_cache is not None:
            return self._schedule_cache
        kind_of: Dict[str, int] = {}
        kind_temp: List[float] = []
        kind_time: List[float] = []
        schedule: List[Tuple[int, str, float]] = []
        for stage, day in self._scalar._stage_occurrences():
            kind = kind_of.get(stage.name)
            if kind is None:
                kind = len(kind_temp)
                kind_of[stage.name] = kind
                kind_temp.append(stage.test_temp_c)
                kind_time.append(stage.per_testcase_s)
            schedule.append((kind, stage.name, day))
        self._schedule_cache = (schedule, kind_temp, kind_time)
        return self._schedule_cache

    def _lower_range(self, range_start: int, range_stop: int) -> Tuple:
        """Faulty CPUs ``[range_start, range_stop)`` → struct-of-arrays.

        Pure function of the population/config/trigger (no pipeline
        stream draws), cached per block so sharded and resumed campaigns
        pay for each range once.  Every per-pair quantity — the
        behaviour replay (independent :class:`VectorPCG64` lane per
        setting seed), the scalar-`pow` frequency law, and the
        index-ordered ``bincount`` accumulations (whose addends never
        cross a CPU boundary) — is computed identically whether the CPU
        is lowered alone, in a shard, or in the full population, which
        is what lets parallel shard workers lower disjoint ranges and
        still match the serial engine bit for bit.

        All returned arrays are indexed by ``cpu - range_start``.
        """
        cached = self._blocks.get((range_start, range_stop))
        if cached is not None:
            return cached
        schedule, kind_temp, kind_time = self._schedule()
        n_kinds = len(kind_temp)

        # ---- struct-of-arrays lowering over the range ----
        faulty = self.population.faulty[range_start:range_stop]
        n_cpus = len(faulty)
        cpu_ref_mult: List[float] = []
        cpu_mult_sum: List[float] = []
        cpu_onset: List[float] = []
        cpu_pair_start: List[int] = []
        cpu_skip: List[bool] = []  # escapes: not even iterated
        tmin_base: List[float] = []
        tmin_jitter: List[float] = []
        f0_base: List[float] = []
        f0_jitter: List[float] = []
        slope: List[float] = []
        pair_tc: List[str] = []
        pair_cpus: List[int] = []  # processors that contribute pairs ...
        pair_counts: List[int] = []  # ... and how many each
        row_pair: List[int] = []
        row_stress_parts: List[float] = []
        seed_groups: List[Tuple[str, List[bytes]]] = []
        skeleton = self._skeleton
        skeleton_stress = self._skeleton_stress

        for cpu, processor in enumerate(faulty):
            defect = processor.defects[0]
            cpu_pair_start.append(len(pair_tc))
            if defect.escapes_toolchain:
                cpu_skip.append(True)
                cpu_ref_mult.append(0.0)
                cpu_mult_sum.append(0.0)
                cpu_onset.append(0.0)
                tmin_base.append(0.0)
                tmin_jitter.append(0.0)
                f0_base.append(0.0)
                f0_jitter.append(0.0)
                slope.append(0.0)
                continue
            cpu_skip.append(False)
            cpu_onset.append(defect.onset_days)
            profile = defect.trigger
            tmin_base.append(profile.tmin)
            tmin_jitter.append(profile.tmin_jitter)
            f0_base.append(profile.log10_freq_at_tmin)
            f0_jitter.append(profile.freq_jitter)
            slope.append(profile.temp_slope)
            # Inlined core_multiplier sum: every core in core_ids is
            # affected, missing map entries default to 1.0, and the
            # running float sum adds term for term like the scalar
            # ``sum()``.
            core_ids = defect.core_ids
            multipliers = defect.core_multipliers
            if not multipliers:
                reference_mult = 1.0
                multiplier_sum = float(len(core_ids))
            elif tuple(multipliers) == core_ids:
                # The map covers core_ids in order (how the fleet
                # generator builds them), so dict-order summation is
                # the same addition sequence.
                reference_mult = multipliers[core_ids[0]]
                multiplier_sum = sum(multipliers.values())
            else:
                get = multipliers.get
                reference_mult = get(core_ids[0], 1.0)
                multiplier_sum = 0.0
                for core in core_ids:
                    multiplier_sum += get(core, 1.0)
            cpu_ref_mult.append(reference_mult)
            cpu_mult_sum.append(multiplier_sum)
            if reference_mult == 0.0:
                continue
            skel = skeleton(defect)
            pair_tcs = skel[0]
            if not pair_tcs:
                continue
            base = len(pair_tc)
            pair_tc += pair_tcs
            pair_cpus.append(cpu)
            pair_counts.append(len(pair_tcs))
            row_pair += [base + local for local in skel[1]]
            row_stress_parts += skeleton_stress(skel, profile.stress_exponent)
            seed_groups.append((defect.defect_id, skel[3]))
        cpu_pair_start.append(len(pair_tc))
        n_pairs = len(pair_tc)

        # ---- resolve all setting behaviours in one vectorised replay ----
        trigger_base = seed_hasher(0, "trigger")
        seed_values: List[int] = []
        for defect_id, encoded_tcs in seed_groups:
            group_base = trigger_base.copy()
            group_base.update(b"\x00" + defect_id.encode("utf-8"))
            seed_values += derive_from_hasher(group_base, encoded_tcs)
        seeds = np.array(seed_values, dtype=np.uint64)

        pair_cpu_arr = np.repeat(
            np.asarray(pair_cpus, dtype=np.intp),
            np.asarray(pair_counts, dtype=np.intp),
        )
        cpu_tmin_base = np.asarray(tmin_base)
        cpu_tmin_jitter = np.asarray(tmin_jitter)
        cpu_f0_base = np.asarray(f0_base)
        cpu_f0_jitter = np.asarray(f0_jitter)
        cpu_slope = np.asarray(slope)

        streams = VectorPCG64.from_seeds(seeds)
        # Same two draws, same op order as TriggerModel.behaviour.
        pair_tmin = cpu_tmin_base[pair_cpu_arr] + (
            cpu_tmin_jitter[pair_cpu_arr] * streams.next_double()
        )
        pair_f0 = cpu_f0_base[pair_cpu_arr] + (
            cpu_f0_jitter[pair_cpu_arr] * streams.standard_normal()
        )
        pair_slope = cpu_slope[pair_cpu_arr]

        row_pair_arr = np.asarray(row_pair, dtype=np.intp)
        row_cpu_arr = pair_cpu_arr[row_pair_arr]
        row_stress = np.asarray(row_stress_parts)
        # Contributing rows always have a nonzero reference multiplier
        # (ref == 0 processors are skipped above), so the scalar law's
        # freq / reference division is a plain vector divide.
        row_ref = np.asarray(cpu_ref_mult)[row_cpu_arr]
        row_sum = np.asarray(cpu_mult_sum)[row_cpu_arr]

        # ---- per-stage-kind expectations, ordered accumulation ----
        ramp_cap = self.trigger.ramp_cap_c
        max_freq = self.trigger.max_freq_per_min
        kind_values: List[List[float]] = []  # per kind: per-pair expected
        kind_probs: List[List[float]] = []  # per kind: per-cpu P(detect)
        kind_nnz: List[List[int]] = []  # per kind: per-cpu e>0 pair count
        pow10 = (10.0).__pow__  # libm pow, identical to the scalar 10.0 ** x
        computed: Dict[Tuple[float, float], int] = {}
        for kind in range(n_kinds):
            temp = kind_temp[kind]
            # Same-parameter kinds (e.g. factory and re-install both run
            # 600 s at 80 °C) evaluate to bitwise-equal expectations, so
            # compute once and alias.
            twin = computed.get((temp, kind_time[kind]))
            if twin is not None:
                kind_values.append(kind_values[twin])
                kind_probs.append(kind_probs[twin])
                kind_nnz.append(kind_nnz[twin])
                continue
            computed[(temp, kind_time[kind])] = kind
            n_rows = len(row_pair_arr)
            active = np.flatnonzero(temp >= pair_tmin)  # tmin gate, bit-exact
            # Scratch-buffer versions of the original expressions; each
            # out= ufunc evaluates the same operation in the same order
            # as its allocating form, so results stay bitwise equal:
            #   ramp       = np.minimum(temp - pair_tmin, ramp_cap)
            #   log10_freq = pair_f0 + pair_slope * ramp
            #   freq       = (pair_pow[row_pair_arr] * row_stress) * row_ref
            #   expected   = ((freq / row_ref) * row_sum) * kt / 60.0
            ramp = self._scratch_buffer("ramp", n_pairs)
            np.subtract(temp, pair_tmin, out=ramp)
            np.minimum(ramp, ramp_cap, out=ramp)
            log10_freq = self._scratch_buffer("log10_freq", n_pairs)
            np.multiply(pair_slope, ramp, out=log10_freq)
            np.add(pair_f0, log10_freq, out=log10_freq)
            pair_pow = self._scratch_buffer("pair_pow", n_pairs)
            pair_pow.fill(0.0)
            if active.size:
                pair_pow[active] = list(
                    map(pow10, log10_freq[active].tolist())
                )
            freq = self._scratch_buffer("freq", n_rows)
            np.take(pair_pow, row_pair_arr, out=freq)
            np.multiply(freq, row_stress, out=freq)
            np.multiply(freq, row_ref, out=freq)
            np.minimum(freq, max_freq, out=freq)
            expected = self._scratch_buffer("expected", n_rows)
            np.divide(freq, row_ref, out=expected)
            np.multiply(expected, row_sum, out=expected)
            # ``* kt`` then ``/ 60.0`` stay two separate operations — a
            # fused ``* (kt / 60.0)`` would change last-ulp results.
            np.multiply(expected, kind_time[kind], out=expected)
            np.divide(expected, 60.0, out=expected)
            # bincount accumulates element by element in index order —
            # the same addition sequence as the scalar dict loop.
            values = np.bincount(
                row_pair_arr, weights=expected, minlength=n_pairs
            )
            totals = np.bincount(
                pair_cpu_arr, weights=values, minlength=n_cpus
            )
            kind_values.append(values.tolist())
            kind_probs.append(
                [1.0 - math.exp(-total) for total in totals.tolist()]
            )
            kind_nnz.append(
                np.bincount(
                    pair_cpu_arr[values > 0.0], minlength=n_cpus
                ).tolist()
            )

        cached = (
            cpu_skip,
            cpu_onset,
            cpu_pair_start,
            pair_tc,
            kind_values,
            list(zip(*kind_probs)),
            kind_nnz,
        )
        self._blocks[(range_start, range_stop)] = cached
        return cached

    def run_range(
        self, start: int, stop: int, result: FleetStudyResult
    ) -> FleetStudyResult:
        """Replay faulty CPUs ``[start, stop)``, appending into ``result``.

        Sequential Bernoulli replay on the shared pipeline stream.
        Draws come off the counted stream in blocks
        (``Generator.random(n)`` emits the same doubles as n scalar
        calls).  A detection consumes exactly one draw per e>0 pair, so
        the failing-testcase block can be sliced out wholesale.  The
        stream position carries across calls and across the scalar
        engine, so any per-shard engine mix is bit-identical to one
        uninterrupted run.
        """
        return self.replay_range(start, stop, result, self._scalar._stream)

    def replay_range(
        self, start: int, stop: int, result: FleetStudyResult, stream
    ) -> FleetStudyResult:
        """:meth:`run_range`, but reading draws from a caller-owned stream.

        The parallel engine positions a fresh
        :class:`~repro.rng.CountedStream` at a shard's draw offset
        (O(1) jump-ahead) and replays the shard in a worker; passing the
        engine's own pipeline stream makes this exactly ``run_range``.
        """
        obs = self.obs
        if obs is not None:
            started = time.perf_counter()
            entry_draws = stream.consumed
            entry_detections = len(result.detections)
            entry_undetected = len(result.undetected_ids)
        block = self._lower_range(start, stop)
        (
            cpu_skip,
            cpu_onset,
            cpu_pair_start,
            pair_tc,
            kind_values,
            cpu_probs,
            kind_nnz,
        ) = block
        schedule = self._schedule()[0]
        draw = stream.draw
        draw_many = stream.draw_many
        sample_failing = self._sample_failing
        detections_append = result.detections.append
        undetected_append = result.undetected_ids.append

        for cpu in range(start, stop):
            local = cpu - start
            processor = self.population.faulty[cpu]
            if cpu_skip[local]:
                undetected_append(processor.processor_id)
                continue
            onset = cpu_onset[local]
            probs = cpu_probs[local]
            detection: Optional[Detection] = None
            for kind, stage_name, day in schedule:
                if day < onset:
                    continue
                probability = probs[kind]
                if probability <= 0.0:
                    continue
                if draw() < probability:
                    count = kind_nnz[kind][local]
                    detection = Detection(
                        processor_id=processor.processor_id,
                        arch_name=processor.arch.name,
                        stage_name=stage_name,
                        day=day,
                        failing_testcase_ids=sample_failing(
                            kind_values[kind],
                            pair_tc,
                            cpu_pair_start[local],
                            cpu_pair_start[local + 1],
                            draw_many(count),
                        ),
                    )
                    break
            if detection is None:
                undetected_append(processor.processor_id)
            else:
                detections_append(detection)
        if obs is not None:
            record_range_metrics(
                obs, self.obs_label, result,
                entry_detections, entry_undetected,
                stream.consumed - entry_draws,
                stop - start,
                time.perf_counter() - started,
            )
        return result

    def accounting_range(self, start: int, stop: int) -> Tuple:
        """Compact draw-accounting arrays for faulty CPUs ``[start, stop)``.

        ``(cpu_skip, cpu_onset, cpu_probs, kind_nnz)``, all indexed by
        ``cpu - start`` — exactly the inputs the parallel engine's
        parent-side scan needs to walk the shared Bernoulli stream
        (one draw per passing gate, ``nnz`` skipped draws per
        detection) without materialising the per-pair replay arrays.
        """
        block = self._lower_range(start, stop)
        return (block[0], block[1], block[5], block[6])

    @staticmethod
    def _sample_failing(
        values: List[float],
        pair_tc: List[str],
        start: int,
        stop: int,
        block: List[float],
    ) -> Tuple[str, ...]:
        """Mirror of ``TestPipeline._sample_failing_testcases``.

        Pairs with zero expectation at this stage are absent from the
        scalar dict and consume no draw; the rest draw one Bernoulli
        each in pair (= dict insertion) order, consuming ``block`` —
        pre-sliced to exactly one draw per e>0 pair — front to back.
        """
        failing: List[str] = []
        best_tc: Optional[str] = None
        best_value = -math.inf
        exp = math.exp
        position = 0
        for expected, tc_id in zip(values[start:stop], pair_tc[start:stop]):
            if expected <= 0.0:
                continue
            if expected > best_value:
                best_value = expected
                best_tc = tc_id
            if block[position] < 1.0 - exp(-expected):
                failing.append(tc_id)
            position += 1
        if not failing and best_tc is not None:
            failing = [best_tc]
        return tuple(sorted(failing))
