"""Zero-copy shared-memory transport for fleet frames.

The parallel engine's pickle path serializes the whole population into
every worker — at paper scale that is megabytes of redundant copies
plus deserialization time per worker.  A :class:`SharedFleetFrame`
instead publishes the frame's SoA columns once, in a single
:class:`multiprocessing.shared_memory.SharedMemory` segment; workers
attach by name and build numpy views straight into the parent's pages.
No column bytes are copied anywhere.

Lifecycle discipline (the part that actually goes wrong in practice):

* the **parent owns the segment** — only the creating side ever calls
  ``unlink``; :meth:`SharedFleetFrame.close` is idempotent so the
  engine can release on pool teardown *and* on the degradation path
  without double-unlink errors;
* **workers never unregister** — pool workers share the parent's
  resource-tracker process (its fd is inherited by fork and spawn
  alike), so the attach-side registration CPython < 3.13 performs
  (bpo-39959) lands in the same shared name cache as the parent's and
  is a harmless duplicate; unregistering from a worker would strip the
  parent's protective entry instead;
* a ``weakref.finalize`` backstop unlinks the segment if the owner is
  garbage-collected without ``close()`` — and if the parent dies hard,
  its own resource tracker reclaims the segment, which is exactly the
  "worker crash must not leak" guarantee the chaos suite checks.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

try:  # pragma: no cover - stdlib, but gate for exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

from ..errors import ConfigurationError
from .frame import FRAME_COLUMNS, FleetFrame, FrameFleetPopulation
from .population import DEFAULT_CHUNK_SIZE, FleetSpec

__all__ = [
    "shared_memory_available",
    "SharedFrameHandle",
    "SharedFleetFrame",
]

_ALIGN = 8


def shared_memory_available() -> bool:
    """Whether POSIX shared memory actually works here.

    Containers without ``/dev/shm`` (or with it mounted noexec/ro) fail
    at segment creation, not import — so probe by creating one.
    """
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    try:
        probe.close()
        probe.unlink()
    except OSError:  # pragma: no cover - cleanup best-effort
        pass
    return True


@dataclass(frozen=True)
class SharedFrameHandle:
    """Everything a worker needs to attach a published frame.

    Pickled into pool initargs in place of the population itself —
    a few hundred bytes regardless of fleet size.  ``columns`` holds
    ``(name, dtype_str, byte_offset, length)`` per frame column.
    """

    shm_name: str
    columns: Tuple[Tuple[str, str, int, int], ...]
    spec: FleetSpec
    arch_names: Tuple[str, ...]
    arch_counts: Tuple[Tuple[str, int], ...]
    window: int
    nbytes: int


def _views(
    handle: SharedFrameHandle, buffer
) -> Dict[str, np.ndarray]:
    views: Dict[str, np.ndarray] = {}
    for name, dtype_str, offset, length in handle.columns:
        views[name] = np.ndarray(
            (length,), dtype=np.dtype(dtype_str), buffer=buffer, offset=offset
        )
    return views


class SharedFleetFrame:
    """One published fleet frame: segment + attached numpy views."""

    def __init__(
        self,
        shm: "shared_memory.SharedMemory",
        handle: SharedFrameHandle,
        owner: bool,
    ):
        self._shm = shm
        self.handle = handle
        self._owner = owner
        self._closed = False
        self.frame = FleetFrame(
            spec=handle.spec,
            arch_names=handle.arch_names,
            arch_counts=dict(handle.arch_counts),
            columns=_views(handle, shm.buf),
        )
        if owner:
            # Backstop only: normal teardown goes through close().
            self._finalizer = weakref.finalize(
                self, _cleanup_segment, shm, True
            )
        else:
            self._finalizer = weakref.finalize(
                self, _cleanup_segment, shm, False
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def create(
        cls, frame: FleetFrame, window: int = DEFAULT_CHUNK_SIZE
    ) -> "SharedFleetFrame":
        """Publish ``frame``'s columns into a fresh segment (one copy)."""
        if shared_memory is None:
            raise ConfigurationError("multiprocessing.shared_memory unavailable")
        layout = []
        offset = 0
        for name in FRAME_COLUMNS:
            array = np.ascontiguousarray(frame.columns[name])
            layout.append((name, array))
            offset += -offset % _ALIGN
            offset += array.nbytes
        total = max(offset, 1)
        shm = shared_memory.SharedMemory(create=True, size=total)
        columns = []
        offset = 0
        try:
            for name, array in layout:
                offset += -offset % _ALIGN
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset
                )
                view[:] = array
                columns.append((name, array.dtype.str, offset, len(array)))
                offset += array.nbytes
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        handle = SharedFrameHandle(
            shm_name=shm.name,
            columns=tuple(columns),
            spec=frame.spec,
            arch_names=frame.arch_names,
            arch_counts=tuple(sorted(frame.arch_counts.items())),
            window=window,
            nbytes=total,
        )
        return cls(shm, handle, owner=True)

    @classmethod
    def attach(cls, handle: SharedFrameHandle) -> "SharedFleetFrame":
        """Worker-side attach by name; never owns (never unlinks)."""
        if shared_memory is None:
            raise ConfigurationError("multiprocessing.shared_memory unavailable")
        # CPython < 3.13 registers attached segments with the resource
        # tracker too (bpo-39959).  Pool workers inherit the *parent's*
        # tracker process, whose name cache is one shared set, so the
        # duplicate registration is a no-op — and unregistering here
        # would strip the parent's own protective entry.  Leave it.
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        return cls(shm, handle, owner=False)

    # -- use ----------------------------------------------------------------

    def population(self, obs=None) -> FrameFleetPopulation:
        """A frame-backed population reading straight from the segment."""
        return FrameFleetPopulation(
            self.frame, window=self.handle.window, obs=obs
        )

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def close(self) -> None:
        """Release the mapping; the owner also unlinks.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        # Drop numpy views into the buffer before closing the mapping,
        # else SharedMemory.close() raises BufferError on exported
        # pointers.
        self.frame.columns.clear()
        self._finalizer.detach()
        _cleanup_segment(self._shm, self._owner)


def _cleanup_segment(shm, owner: bool) -> None:
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - best-effort
        return
    if owner:
        try:
            shm.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
