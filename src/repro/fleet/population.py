"""Fleet population generation.

The study covers "over one million CPUs from hundreds of clusters in 28
data centers across 14 countries" (§1).  Healthy processors are only
*counted* (there are ~999,640 of them and they never do anything
interesting); faulty processors are fully instantiated with defects so
the test pipeline can exercise them.

Calibration:

* per-architecture faulty *incidence* derives from Table 2's measured
  failure rates, inflated by the escape fraction (§2.3's toolchain
  false negatives — faulty CPUs that are never detected and therefore
  never counted by the paper);
* defect *onset times* follow a three-component mixture chosen so the
  four test timings of Table 1 (factory / datacenter / re-install /
  regular) each catch their share: present-at-birth defects, early
  burn-in defects that develop during transport/assembly/installation,
  and late-onset or intermittent defects that only regular testing can
  catch;
* trigger parameters follow the same Figure-9 law as the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import substream
from ..units import from_permyriad
from ..cpu.catalog import (
    ARCHITECTURES,
    FIG9_INTERCEPT,
    FIG9_NOISE_SD,
    FIG9_SLOPE,
    PAPER_ARCH_FAILURE_RATES_PERMYRIAD,
    _GENERATED_POOLS,
    _defect,
)
from ..cpu.defects import Defect, DefectScope
from ..cpu.features import Feature
from ..cpu.isa import DEFAULT_ISA
from ..cpu.processor import MicroArchitecture, Processor

__all__ = [
    "OnsetMixture",
    "FleetSpec",
    "FleetPopulation",
    "FleetChunk",
    "fleet_arch_counts",
    "iter_fleet_chunks",
    "generate_fleet",
]

#: Streamed generation emits faulty CPUs in struct-of-arrays chunks of
#: this many rows by default — large enough to amortize per-chunk
#: overhead, small enough that a chunk is always cache-friendly.
DEFAULT_CHUNK_SIZE = 8192


@dataclass(frozen=True)
class OnsetMixture:
    """When defects become active, relative to factory delivery.

    Weights are the mixture probabilities; the windows are in days.
    Tuned so the four Table-1 timings split detections roughly
    0.776 : 0.18 : 2.306 : 0.348 (factory : datacenter : re-install :
    regular).
    """

    at_birth_weight: float = 0.215
    #: Transit damage: defects that develop between factory shipment and
    #: datacenter arrival — the small share datacenter-delivery testing
    #: catches (Table 1: 0.18 of 3.61 permyriad).
    transit_weight: float = 0.035
    burn_in_weight: float = 0.62
    late_weight: float = 0.13
    transit_window_days: Tuple[float, float] = (1.0, 21.0)
    #: Burn-in onsets develop during assembly/installation — after the
    #: datacenter-delivery test (day 21) but before the re-installation
    #: test (day 45), which is why re-installation catches the largest
    #: share in Table 1.
    burn_in_window_days: Tuple[float, float] = (22.0, 45.0)
    #: Late onsets appear during the 32-month production horizon.
    late_window_days: Tuple[float, float] = (50.0, 900.0)

    def __post_init__(self) -> None:
        total = (
            self.at_birth_weight
            + self.transit_weight
            + self.burn_in_weight
            + self.late_weight
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError("onset mixture weights must sum to 1")

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        if u < self.at_birth_weight:
            return 0.0
        u -= self.at_birth_weight
        if u < self.transit_weight:
            low, high = self.transit_window_days
        elif u < self.transit_weight + self.burn_in_weight:
            low, high = self.burn_in_window_days
        else:
            low, high = self.late_window_days
        return float(rng.uniform(low, high))


@dataclass(frozen=True)
class FleetSpec:
    """Parameters of the generated fleet."""

    total_processors: int = 1_000_000
    #: Fraction of the fleet per architecture (defaults to uniform-ish
    #: shares; companies buy in batches so shares differ).
    arch_shares: Optional[Dict[str, float]] = None
    #: Fraction of faulty CPUs whose defect escapes the toolchain
    #: entirely (§2.3: "We did find SDCs that cannot be detected by this
    #: toolchain").
    escape_fraction: float = 0.05
    #: Multiplier on the per-architecture faulty incidence.  Table 2
    #: rates leave a 100k-CPU fleet with only a few dozen faulty CPUs;
    #: benchmarks and parity tests raise this to build dense faulty
    #: populations without paying for millions of healthy counters.
    failure_rate_scale: float = 1.0
    onset: OnsetMixture = field(default_factory=OnsetMixture)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.failure_rate_scale <= 0:
            raise ConfigurationError("failure_rate_scale must be positive")

    def resolved_shares(self) -> Dict[str, float]:
        if self.arch_shares is not None:
            shares = dict(self.arch_shares)
        else:
            # Newer architectures are deployed in larger volume.
            raw = {
                name: 0.6 + 0.1 * arch.generation
                for name, arch in ARCHITECTURES.items()
            }
            total = sum(raw.values())
            shares = {name: value / total for name, value in raw.items()}
        total = sum(shares.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError("arch shares must sum to 1")
        return shares


@dataclass
class FleetPopulation:
    """The generated fleet: healthy counts plus instantiated faulty CPUs."""

    spec: FleetSpec
    arch_counts: Dict[str, int]
    faulty: List[Processor]

    @property
    def total(self) -> int:
        return sum(self.arch_counts.values())

    def faulty_by_arch(self) -> Dict[str, List[Processor]]:
        grouped: Dict[str, List[Processor]] = {name: [] for name in self.arch_counts}
        for processor in self.faulty:
            grouped[processor.arch.name].append(processor)
        return grouped

    def detectable_faulty(self) -> List[Processor]:
        return [
            p
            for p in self.faulty
            if not all(d.escapes_toolchain for d in p.defects)
        ]


#: Consistency feature combinations, indexed by the sampled combo code
#: (0.4 / 0.4 / 0.2 split over cache, TM, and both).
_CONSISTENCY_COMBOS: Tuple[Tuple[Feature, ...], ...] = (
    (Feature.CACHE,),
    (Feature.TRX_MEM,),
    (Feature.CACHE, Feature.TRX_MEM),
)
#: Computation primary features, indexed by the sampled combo code.
_PRIMARY_FEATURES: Tuple[Feature, ...] = (
    Feature.ALU,
    Feature.VECTOR,
    Feature.FPU,
)


def _sample_defect_params(
    arch: MicroArchitecture, rng: np.random.Generator
) -> Tuple[bool, int, int, int, float, float, float, float]:
    """Draw one defect's compact parameter tuple.

    Consumes *exactly* the draws the original inline sampler consumed,
    in the same order — this is the contract that keeps chunked
    streamed generation bit-identical to the materialized path.
    Everything else about a fleet defect (core multipliers, bitflip
    patterns, datatypes) is derived deterministically from these
    parameters plus the CPU name, so the tuple is the *complete*
    stochastic state of a faulty CPU.

    §4.1: of the 27 studied CPUs, 19 are computation-type and 8
    consistency-type — we keep that ~70/30 split fleet-wide.
    Observation 4: about half the faulty CPUs have a single defective
    core.

    Returns ``(consistency, combo, pool_index, core_id, tmin, log10_f0,
    slope, pattern_probability)`` where ``combo`` indexes
    ``_CONSISTENCY_COMBOS`` or ``_PRIMARY_FEATURES`` depending on
    ``consistency``, and ``core_id`` is ``-1`` for all-core defects.
    """
    consistency = bool(rng.random() < 8.0 / 27.0)
    tmin = float(rng.uniform(40.0, 72.0))
    log10_f0 = float(
        FIG9_INTERCEPT - FIG9_SLOPE * (tmin - 40.0) + rng.normal(0.0, FIG9_NOISE_SD)
    )
    slope = float(rng.uniform(0.08, 0.22))
    single = rng.random() < 0.5
    core_id = int(rng.integers(arch.physical_cores)) if single else -1
    if consistency:
        kind = rng.random()
        combo = 0 if kind < 0.4 else (1 if kind < 0.8 else 2)
        pool_index = 0
    else:
        # Floating-point-heavy features dominate (Observation 6: "many
        # different vulnerable features are related to floating-point
        # calculation").
        combo = int(rng.choice(3, p=[0.30, 0.30, 0.40]))
        pool = _GENERATED_POOLS[_PRIMARY_FEATURES[combo]]
        pool_index = int(rng.integers(len(pool)))
    pattern_probability = float(rng.uniform(0.35, 0.9))
    return (
        consistency, combo, pool_index, core_id,
        tmin, log10_f0, slope, pattern_probability,
    )


def _build_fleet_defect(
    name: str,
    arch: MicroArchitecture,
    params: Tuple[bool, int, int, int, float, float, float, float],
    onset_days: float,
    escapes: bool,
) -> Defect:
    """Deterministically rebuild a defect from its sampled parameters.

    Consumes no randomness: core multipliers and bitflip patterns come
    from name-keyed substreams inside the catalog builder, so the same
    ``(name, params)`` always yields the identical frozen
    :class:`~repro.cpu.defects.Defect`, whether built during streamed
    chunk materialization or eager generation.
    """
    (
        consistency, combo, pool_index, core_id,
        tmin, log10_f0, slope, pattern_probability,
    ) = params
    if consistency:
        features: Tuple[Feature, ...] = _CONSISTENCY_COMBOS[combo]
        instructions: Tuple[str, ...] = ()
    else:
        primary = _PRIMARY_FEATURES[combo]
        pool = _GENERATED_POOLS[primary]
        instructions = pool[pool_index]
        features = tuple(
            dict.fromkeys(
                (primary,)
                + tuple(
                    f
                    for m in instructions
                    for f in DEFAULT_ISA[m].features
                    if f in (Feature.ALU, Feature.VECTOR, Feature.FPU)
                )
            )
        )
    scope = DefectScope.SINGLE_CORE if core_id >= 0 else DefectScope.ALL_CORES
    cores = (core_id,) if core_id >= 0 else None
    defect = _defect(
        name, features, arch, scope, instructions,
        tmin=tmin, log10_f0=log10_f0, slope=slope,
        pattern_probability=pattern_probability,
        cores=cores,
    )
    # Dataclass is frozen; rebuild with onset/escape attributes set.
    return Defect(
        defect_id=defect.defect_id,
        features=defect.features,
        scope=defect.scope,
        core_ids=defect.core_ids,
        instructions=defect.instructions,
        datatypes=defect.datatypes,
        trigger=defect.trigger,
        bitflip=defect.bitflip,
        core_multipliers=defect.core_multipliers,
        multithread_only=defect.multithread_only,
        escapes_toolchain=escapes,
        onset_days=onset_days,
    )


def _sample_fleet_defect(
    name: str,
    arch: MicroArchitecture,
    onset_days: float,
    escapes: bool,
    rng: np.random.Generator,
) -> Defect:
    """One defect with catalog-consistent statistics (sample + build)."""
    params = _sample_defect_params(arch, rng)
    return _build_fleet_defect(name, arch, params, onset_days, escapes)


@dataclass
class FleetChunk:
    """A contiguous run of faulty CPUs in struct-of-arrays form.

    Each row is one faulty CPU's complete stochastic state (the output
    of :func:`_sample_defect_params` plus onset/escape draws) — about
    45 bytes instead of the kilobytes a materialized
    :class:`~repro.cpu.processor.Processor` costs — so a million-CPU
    fleet streams through memory a chunk at a time.
    :meth:`materialize` deterministically rebuilds the exact Processor
    objects eager generation would have produced for the same rows.
    """

    #: Global faulty-CPU index of this chunk's first row.
    start: int
    #: Architecture name table ``arch_code`` indexes into.
    arch_names: Tuple[str, ...]
    arch_code: np.ndarray
    #: Per-architecture faulty index (the ``F%04d`` in the CPU name).
    arch_index: np.ndarray
    onset_days: np.ndarray
    escapes: np.ndarray
    consistency: np.ndarray
    combo: np.ndarray
    pool_index: np.ndarray
    #: Defective physical core, or -1 for all-core defects.
    core_id: np.ndarray
    tmin: np.ndarray
    log10_f0: np.ndarray
    slope: np.ndarray
    pattern_prob: np.ndarray

    def __len__(self) -> int:
        return len(self.arch_code)

    def materialize_row(self, row: int) -> Processor:
        """Rebuild one row's Processor, bit-identical to eager output."""
        name = self.arch_names[int(self.arch_code[row])]
        arch = ARCHITECTURES[name]
        cpu_name = f"{name}-F{int(self.arch_index[row]):04d}"
        params = (
            bool(self.consistency[row]),
            int(self.combo[row]),
            int(self.pool_index[row]),
            int(self.core_id[row]),
            float(self.tmin[row]),
            float(self.log10_f0[row]),
            float(self.slope[row]),
            float(self.pattern_prob[row]),
        )
        defect = _build_fleet_defect(
            cpu_name, arch, params,
            float(self.onset_days[row]), bool(self.escapes[row]),
        )
        return Processor(
            processor_id=cpu_name,
            arch=arch,
            defects=(defect,),
            age_years=0.0,
        )

    def materialize(self) -> List[Processor]:
        return [self.materialize_row(row) for row in range(len(self))]


def fleet_arch_counts(spec: FleetSpec) -> Dict[str, int]:
    """Per-architecture processor counts (deterministic, no RNG).

    Shares are rounded per arch; the last (sorted) arch absorbs the
    rounding remainder — exactly the accounting eager generation uses.
    """
    shares = spec.resolved_shares()
    arch_counts: Dict[str, int] = {}
    remaining = spec.total_processors
    names = sorted(shares)
    for name in names[:-1]:
        count = int(round(spec.total_processors * shares[name]))
        arch_counts[name] = count
        remaining -= count
    arch_counts[names[-1]] = remaining
    return arch_counts


def iter_fleet_chunks(
    spec: Optional[FleetSpec] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[FleetChunk]:
    """Stream the fleet's faulty CPUs as struct-of-arrays chunks.

    Consumes the single ``substream(seed, "fleet")`` generator in
    exactly the order eager generation does — per sorted architecture,
    one binomial count, then per CPU: onset, escape, defect parameters
    — so concatenating every chunk's :meth:`~FleetChunk.materialize`
    output reproduces :func:`generate_fleet`'s faulty list bit for bit
    (:func:`generate_fleet` is literally implemented that way).  Peak
    memory is one chunk (~45 bytes/row), never the whole fleet.

    Chunks may span architecture boundaries; rows carry their arch code
    and per-arch index so any chunking yields the same global sequence.
    """
    spec = spec or FleetSpec()
    if chunk_size <= 0:
        raise ConfigurationError("chunk_size must be positive")
    rng = substream(spec.seed, "fleet")
    arch_counts = fleet_arch_counts(spec)
    names = sorted(arch_counts)
    arch_names = tuple(names)
    arch_code_of = {name: code for code, name in enumerate(arch_names)}

    rows: List[Tuple] = []
    start = 0

    def flush() -> FleetChunk:
        nonlocal rows, start
        columns = list(zip(*rows)) if rows else [[] for _ in range(12)]
        chunk = FleetChunk(
            start=start,
            arch_names=arch_names,
            arch_code=np.asarray(columns[0], dtype=np.int16),
            arch_index=np.asarray(columns[1], dtype=np.int32),
            onset_days=np.asarray(columns[2], dtype=np.float64),
            escapes=np.asarray(columns[3], dtype=np.bool_),
            consistency=np.asarray(columns[4], dtype=np.bool_),
            combo=np.asarray(columns[5], dtype=np.int8),
            pool_index=np.asarray(columns[6], dtype=np.int32),
            core_id=np.asarray(columns[7], dtype=np.int32),
            tmin=np.asarray(columns[8], dtype=np.float64),
            log10_f0=np.asarray(columns[9], dtype=np.float64),
            slope=np.asarray(columns[10], dtype=np.float64),
            pattern_prob=np.asarray(columns[11], dtype=np.float64),
        )
        start += len(rows)
        rows = []
        return chunk

    for name in names:
        arch = ARCHITECTURES[name]
        code = arch_code_of[name]
        # Table 2 rates are *detected* failure rates; true incidence is
        # higher by the escape fraction.
        detected_rate = from_permyriad(PAPER_ARCH_FAILURE_RATES_PERMYRIAD[name])
        incidence = min(
            detected_rate / (1.0 - spec.escape_fraction)
            * spec.failure_rate_scale,
            1.0,
        )
        count = int(rng.binomial(arch_counts[name], incidence))
        for index in range(count):
            onset = spec.onset.sample(rng)
            escapes = bool(rng.random() < spec.escape_fraction)
            (
                consistency, combo, pool_index, core_id,
                tmin, log10_f0, slope, pattern_probability,
            ) = _sample_defect_params(arch, rng)
            rows.append((
                code, index, onset, escapes, consistency, combo,
                pool_index, core_id, tmin, log10_f0, slope,
                pattern_probability,
            ))
            if len(rows) >= chunk_size:
                yield flush()
    if rows:
        yield flush()


def generate_fleet(spec: Optional[FleetSpec] = None) -> FleetPopulation:
    """Generate the fleet: arch counts plus instantiated faulty CPUs.

    Implemented over :func:`iter_fleet_chunks`, so the eager and
    streamed paths share one sampler and parity between them holds by
    construction.
    """
    spec = spec or FleetSpec()
    faulty: List[Processor] = []
    for chunk in iter_fleet_chunks(spec):
        faulty.extend(chunk.materialize())
    return FleetPopulation(
        spec=spec, arch_counts=fleet_arch_counts(spec), faulty=faulty
    )
