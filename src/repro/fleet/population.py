"""Fleet population generation.

The study covers "over one million CPUs from hundreds of clusters in 28
data centers across 14 countries" (§1).  Healthy processors are only
*counted* (there are ~999,640 of them and they never do anything
interesting); faulty processors are fully instantiated with defects so
the test pipeline can exercise them.

Calibration:

* per-architecture faulty *incidence* derives from Table 2's measured
  failure rates, inflated by the escape fraction (§2.3's toolchain
  false negatives — faulty CPUs that are never detected and therefore
  never counted by the paper);
* defect *onset times* follow a three-component mixture chosen so the
  four test timings of Table 1 (factory / datacenter / re-install /
  regular) each catch their share: present-at-birth defects, early
  burn-in defects that develop during transport/assembly/installation,
  and late-onset or intermittent defects that only regular testing can
  catch;
* trigger parameters follow the same Figure-9 law as the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import substream
from ..units import from_permyriad
from ..cpu.catalog import (
    ARCHITECTURES,
    FIG9_INTERCEPT,
    FIG9_NOISE_SD,
    FIG9_SLOPE,
    PAPER_ARCH_FAILURE_RATES_PERMYRIAD,
    _GENERATED_POOLS,
    _defect,
)
from ..cpu.defects import Defect, DefectScope
from ..cpu.features import Feature
from ..cpu.isa import DEFAULT_ISA
from ..cpu.processor import MicroArchitecture, Processor

__all__ = ["OnsetMixture", "FleetSpec", "FleetPopulation", "generate_fleet"]


@dataclass(frozen=True)
class OnsetMixture:
    """When defects become active, relative to factory delivery.

    Weights are the mixture probabilities; the windows are in days.
    Tuned so the four Table-1 timings split detections roughly
    0.776 : 0.18 : 2.306 : 0.348 (factory : datacenter : re-install :
    regular).
    """

    at_birth_weight: float = 0.215
    #: Transit damage: defects that develop between factory shipment and
    #: datacenter arrival — the small share datacenter-delivery testing
    #: catches (Table 1: 0.18 of 3.61 permyriad).
    transit_weight: float = 0.035
    burn_in_weight: float = 0.62
    late_weight: float = 0.13
    transit_window_days: Tuple[float, float] = (1.0, 21.0)
    #: Burn-in onsets develop during assembly/installation — after the
    #: datacenter-delivery test (day 21) but before the re-installation
    #: test (day 45), which is why re-installation catches the largest
    #: share in Table 1.
    burn_in_window_days: Tuple[float, float] = (22.0, 45.0)
    #: Late onsets appear during the 32-month production horizon.
    late_window_days: Tuple[float, float] = (50.0, 900.0)

    def __post_init__(self) -> None:
        total = (
            self.at_birth_weight
            + self.transit_weight
            + self.burn_in_weight
            + self.late_weight
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError("onset mixture weights must sum to 1")

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        if u < self.at_birth_weight:
            return 0.0
        u -= self.at_birth_weight
        if u < self.transit_weight:
            low, high = self.transit_window_days
        elif u < self.transit_weight + self.burn_in_weight:
            low, high = self.burn_in_window_days
        else:
            low, high = self.late_window_days
        return float(rng.uniform(low, high))


@dataclass(frozen=True)
class FleetSpec:
    """Parameters of the generated fleet."""

    total_processors: int = 1_000_000
    #: Fraction of the fleet per architecture (defaults to uniform-ish
    #: shares; companies buy in batches so shares differ).
    arch_shares: Optional[Dict[str, float]] = None
    #: Fraction of faulty CPUs whose defect escapes the toolchain
    #: entirely (§2.3: "We did find SDCs that cannot be detected by this
    #: toolchain").
    escape_fraction: float = 0.05
    #: Multiplier on the per-architecture faulty incidence.  Table 2
    #: rates leave a 100k-CPU fleet with only a few dozen faulty CPUs;
    #: benchmarks and parity tests raise this to build dense faulty
    #: populations without paying for millions of healthy counters.
    failure_rate_scale: float = 1.0
    onset: OnsetMixture = field(default_factory=OnsetMixture)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.failure_rate_scale <= 0:
            raise ConfigurationError("failure_rate_scale must be positive")

    def resolved_shares(self) -> Dict[str, float]:
        if self.arch_shares is not None:
            shares = dict(self.arch_shares)
        else:
            # Newer architectures are deployed in larger volume.
            raw = {
                name: 0.6 + 0.1 * arch.generation
                for name, arch in ARCHITECTURES.items()
            }
            total = sum(raw.values())
            shares = {name: value / total for name, value in raw.items()}
        total = sum(shares.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError("arch shares must sum to 1")
        return shares


@dataclass
class FleetPopulation:
    """The generated fleet: healthy counts plus instantiated faulty CPUs."""

    spec: FleetSpec
    arch_counts: Dict[str, int]
    faulty: List[Processor]

    @property
    def total(self) -> int:
        return sum(self.arch_counts.values())

    def faulty_by_arch(self) -> Dict[str, List[Processor]]:
        grouped: Dict[str, List[Processor]] = {name: [] for name in self.arch_counts}
        for processor in self.faulty:
            grouped[processor.arch.name].append(processor)
        return grouped

    def detectable_faulty(self) -> List[Processor]:
        return [
            p
            for p in self.faulty
            if not all(d.escapes_toolchain for d in p.defects)
        ]


def _sample_fleet_defect(
    name: str,
    arch: MicroArchitecture,
    onset_days: float,
    escapes: bool,
    rng: np.random.Generator,
) -> Defect:
    """One defect with catalog-consistent statistics.

    §4.1: of the 27 studied CPUs, 19 are computation-type and 8
    consistency-type — we keep that ~70/30 split fleet-wide.
    Observation 4: about half the faulty CPUs have a single defective
    core.
    """
    consistency = rng.random() < 8.0 / 27.0
    tmin = float(rng.uniform(40.0, 72.0))
    log10_f0 = float(
        FIG9_INTERCEPT - FIG9_SLOPE * (tmin - 40.0) + rng.normal(0.0, FIG9_NOISE_SD)
    )
    slope = float(rng.uniform(0.08, 0.22))
    single = rng.random() < 0.5
    scope = DefectScope.SINGLE_CORE if single else DefectScope.ALL_CORES
    cores = (int(rng.integers(arch.physical_cores)),) if single else None

    if consistency:
        kind = rng.random()
        if kind < 0.4:
            features: Tuple[Feature, ...] = (Feature.CACHE,)
        elif kind < 0.8:
            features = (Feature.TRX_MEM,)
        else:
            features = (Feature.CACHE, Feature.TRX_MEM)
        instructions: Tuple[str, ...] = ()
    else:
        # Floating-point-heavy features dominate (Observation 6: "many
        # different vulnerable features are related to floating-point
        # calculation").
        primary = (Feature.ALU, Feature.VECTOR, Feature.FPU)[
            int(rng.choice(3, p=[0.30, 0.30, 0.40]))
        ]
        pool = _GENERATED_POOLS[primary]
        instructions = pool[int(rng.integers(len(pool)))]
        features = tuple(
            dict.fromkeys(
                (primary,)
                + tuple(
                    f
                    for m in instructions
                    for f in DEFAULT_ISA[m].features
                    if f in (Feature.ALU, Feature.VECTOR, Feature.FPU)
                )
            )
        )
    defect = _defect(
        name, features, arch, scope, instructions,
        tmin=tmin, log10_f0=log10_f0, slope=slope,
        pattern_probability=float(rng.uniform(0.35, 0.9)),
        cores=cores,
    )
    # Dataclass is frozen; rebuild with onset/escape attributes set.
    return Defect(
        defect_id=defect.defect_id,
        features=defect.features,
        scope=defect.scope,
        core_ids=defect.core_ids,
        instructions=defect.instructions,
        datatypes=defect.datatypes,
        trigger=defect.trigger,
        bitflip=defect.bitflip,
        core_multipliers=defect.core_multipliers,
        multithread_only=defect.multithread_only,
        escapes_toolchain=escapes,
        onset_days=onset_days,
    )


def generate_fleet(spec: Optional[FleetSpec] = None) -> FleetPopulation:
    """Generate the fleet: arch counts plus instantiated faulty CPUs."""
    spec = spec or FleetSpec()
    rng = substream(spec.seed, "fleet")
    shares = spec.resolved_shares()

    arch_counts: Dict[str, int] = {}
    remaining = spec.total_processors
    names = sorted(shares)
    for name in names[:-1]:
        count = int(round(spec.total_processors * shares[name]))
        arch_counts[name] = count
        remaining -= count
    arch_counts[names[-1]] = remaining

    faulty: List[Processor] = []
    for name in names:
        arch = ARCHITECTURES[name]
        # Table 2 rates are *detected* failure rates; true incidence is
        # higher by the escape fraction.
        detected_rate = from_permyriad(PAPER_ARCH_FAILURE_RATES_PERMYRIAD[name])
        incidence = min(
            detected_rate / (1.0 - spec.escape_fraction)
            * spec.failure_rate_scale,
            1.0,
        )
        count = int(rng.binomial(arch_counts[name], incidence))
        for index in range(count):
            cpu_name = f"{name}-F{index:04d}"
            onset = spec.onset.sample(rng)
            escapes = rng.random() < spec.escape_fraction
            defect = _sample_fleet_defect(cpu_name, arch, onset, escapes, rng)
            faulty.append(
                Processor(
                    processor_id=cpu_name,
                    arch=arch,
                    defects=(defect,),
                    age_years=0.0,
                )
            )
    return FleetPopulation(spec=spec, arch_counts=arch_counts, faulty=faulty)
