"""Out-of-core fleet frames: SoA faulty populations with lazy windows.

Eager generation holds every faulty :class:`~repro.cpu.processor
.Processor` resident — kilobytes apiece once bitflip patterns and core
multipliers are attached.  At paper scale (>1M CPUs, dense
``failure_rate_scale``) that dominates campaign RSS.  A
:class:`FleetFrame` instead keeps the ~45-byte struct-of-arrays row
that *determines* each processor (the :func:`~.population
._sample_defect_params` tuple plus onset/escape) and rebuilds real
Processor objects on demand, one window at a time, bit-identical to
what :func:`~.population.generate_fleet` would have produced.

The pipeline engines only ever touch ``population.faulty[start:stop]``
(range lowering) or ``population.faulty[i]`` (replay), so
:class:`LazyFaultyList` services exactly those two access patterns with
a single cached window: peak resident Processors = max(window size,
largest range requested by the driver), which the campaign layer
bounds via its shard size.

Frames also round-trip through the :mod:`repro.colstore` container
(one ``.npy`` per column, CRC-checked manifest), which is what lets a
spilled population be memory-mapped back without regeneration.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union, overload

import numpy as np

from ..colstore import read_columns, write_columns
from ..cpu.processor import Processor
from ..errors import ConfigurationError
from .population import (
    DEFAULT_CHUNK_SIZE,
    FleetChunk,
    FleetPopulation,
    FleetSpec,
    OnsetMixture,
    fleet_arch_counts,
    iter_fleet_chunks,
)

__all__ = [
    "FleetFrame",
    "LazyFaultyList",
    "FrameFleetPopulation",
    "generate_fleet_frame",
    "spec_to_dict",
    "spec_from_dict",
]

#: Column names of a fleet frame, in canonical order (mirrors
#: :class:`~.population.FleetChunk`'s row layout).
FRAME_COLUMNS: Tuple[str, ...] = (
    "arch_code",
    "arch_index",
    "onset_days",
    "escapes",
    "consistency",
    "combo",
    "pool_index",
    "core_id",
    "tmin",
    "log10_f0",
    "slope",
    "pattern_prob",
)

#: Column dtypes (fixed by :class:`~.population.FleetChunk`'s layout);
#: used to shape empty frames when a spec yields zero faulty CPUs.
FRAME_DTYPES: Dict[str, np.dtype] = {
    "arch_code": np.dtype(np.int16),
    "arch_index": np.dtype(np.int32),
    "onset_days": np.dtype(np.float64),
    "escapes": np.dtype(np.bool_),
    "consistency": np.dtype(np.bool_),
    "combo": np.dtype(np.int8),
    "pool_index": np.dtype(np.int32),
    "core_id": np.dtype(np.int32),
    "tmin": np.dtype(np.float64),
    "log10_f0": np.dtype(np.float64),
    "slope": np.dtype(np.float64),
    "pattern_prob": np.dtype(np.float64),
}


def spec_to_dict(spec: FleetSpec) -> Dict[str, object]:
    """JSON-safe dict for a :class:`FleetSpec` (round-trips exactly)."""
    data = asdict(spec)
    data["onset"] = {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in asdict(spec.onset).items()
    }
    return data


def spec_from_dict(data: Dict[str, object]) -> FleetSpec:
    """Inverse of :func:`spec_to_dict`."""
    data = dict(data)
    onset = dict(data.pop("onset"))
    for key, value in onset.items():
        if isinstance(value, list):
            onset[key] = tuple(value)
    shares = data.get("arch_shares")
    if shares is not None:
        data["arch_shares"] = dict(shares)
    return FleetSpec(onset=OnsetMixture(**onset), **data)


class FleetFrame:
    """A whole fleet's faulty CPUs in struct-of-arrays form.

    Columns may be owned in-memory arrays or read-only memory maps
    (after :meth:`load`); every consumer treats them as immutable.
    """

    def __init__(
        self,
        spec: FleetSpec,
        arch_names: Tuple[str, ...],
        arch_counts: Dict[str, int],
        columns: Dict[str, np.ndarray],
    ):
        missing = [name for name in FRAME_COLUMNS if name not in columns]
        if missing:
            raise ConfigurationError(f"fleet frame missing columns: {missing}")
        lengths = {name: len(columns[name]) for name in FRAME_COLUMNS}
        if len(set(lengths.values())) > 1:
            raise ConfigurationError(
                f"fleet frame columns disagree on length: {lengths}"
            )
        self.spec = spec
        self.arch_names = tuple(arch_names)
        self.arch_counts = dict(arch_counts)
        self.columns = {name: columns[name] for name in FRAME_COLUMNS}

    def __len__(self) -> int:
        return len(self.columns["arch_code"])

    @property
    def nbytes(self) -> int:
        return sum(array.nbytes for array in self.columns.values())

    def chunk(self, start: int, stop: int) -> FleetChunk:
        """A zero-copy :class:`FleetChunk` view of rows [start, stop)."""
        return FleetChunk(
            start=start,
            arch_names=self.arch_names,
            **{name: self.columns[name][start:stop] for name in FRAME_COLUMNS},
        )

    def materialize(self, start: int, stop: int) -> List[Processor]:
        """Rebuild rows [start, stop) as Processors (eager-parity)."""
        return self.chunk(start, stop).materialize()

    # -- persistence --------------------------------------------------------

    def save(self, directory, obs=None) -> int:
        """Spill this frame through :mod:`repro.colstore`; bytes written."""
        meta = {
            "kind": "fleet-frame",
            "spec": spec_to_dict(self.spec),
            "arch_names": list(self.arch_names),
            "arch_counts": dict(self.arch_counts),
        }
        return write_columns(directory, self.columns, meta=meta, obs=obs)

    @classmethod
    def load(cls, directory, mmap: bool = True, verify: bool = False) -> "FleetFrame":
        """Map a spilled frame back; columns stay on disk when ``mmap``."""
        columns, meta = read_columns(directory, mmap=mmap, verify=verify)
        return cls(
            spec=spec_from_dict(meta["spec"]),
            arch_names=tuple(meta["arch_names"]),
            arch_counts={k: int(v) for k, v in meta["arch_counts"].items()},
            columns=columns,
        )


class LazyFaultyList(Sequence):
    """Sequence of faulty Processors materialized a window at a time.

    Exactly one materialized window is cached.  Slicing materializes
    (and caches) precisely the requested range — the engines' range
    lowering path; integer access materializes the window-aligned block
    around the index — the replay path, which walks CPUs in order
    within a shard and therefore hits the cache after the first touch.
    Pickling drops the cache, so shipping a population to workers costs
    only the SoA columns.
    """

    def __init__(self, frame: FleetFrame, window: int = DEFAULT_CHUNK_SIZE, obs=None):
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self._frame = frame
        self._window = window
        self._cache_range: Optional[Tuple[int, int]] = None
        self._cache: List[Processor] = []
        #: How many windows were rebuilt — the out-of-core tests assert
        #: on this to prove access locality, and obs mirrors it.
        self.materializations = 0
        self.obs = obs

    @property
    def frame(self) -> FleetFrame:
        return self._frame

    @property
    def window(self) -> int:
        return self._window

    def __len__(self) -> int:
        return len(self._frame)

    def _materialize(self, start: int, stop: int) -> List[Processor]:
        if self._cache_range != (start, stop):
            self._cache = self._frame.materialize(start, stop)
            self._cache_range = (start, stop)
            self.materializations += 1
            if self.obs is not None:
                self.obs.inc("repro_frame_materializations_total")
        return self._cache

    @overload
    def __getitem__(self, index: int) -> Processor: ...

    @overload
    def __getitem__(self, index: slice) -> List[Processor]: ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[Processor, List[Processor]]:
        n = len(self._frame)
        if isinstance(index, slice):
            start, stop, step = index.indices(n)
            if step != 1:
                return [
                    self[i] for i in range(start, stop, step)
                ]
            if start >= stop:
                return []
            return list(self._materialize(start, stop))
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("faulty index out of range")
        start = (index // self._window) * self._window
        stop = min(start + self._window, n)
        if self._cache_range is not None:
            lo, hi = self._cache_range
            if lo <= index < hi:
                return self._cache[index - lo]
        return self._materialize(start, stop)[index - start]

    def __iter__(self) -> Iterator[Processor]:
        for start in range(0, len(self), self._window):
            stop = min(start + self._window, len(self))
            yield from self._materialize(start, stop)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache_range"] = None
        state["_cache"] = []
        state["obs"] = None
        return state


class FrameFleetPopulation(FleetPopulation):
    """A :class:`FleetPopulation` whose faulty list is frame-backed.

    Drop-in for every engine (they only slice/index ``faulty``), but
    peak resident Processors stay bounded by the window.  The frame is
    exposed so the parallel engine can ship it to workers over shared
    memory instead of pickling Processor objects.
    """

    def __init__(self, frame: FleetFrame, window: int = DEFAULT_CHUNK_SIZE, obs=None):
        super().__init__(
            spec=frame.spec,
            arch_counts=dict(frame.arch_counts),
            faulty=LazyFaultyList(frame, window=window, obs=obs),
        )
        self.frame = frame

    def faulty_by_arch(self) -> Dict[str, List[Processor]]:
        grouped: Dict[str, List[Processor]] = {
            name: [] for name in self.arch_counts
        }
        codes = self.frame.columns["arch_code"]
        names = self.frame.arch_names
        for row in range(len(codes)):
            # Group by the SoA arch column; only rows of interest get
            # materialized (still all of them here, but window-bounded).
            grouped[names[int(codes[row])]].append(self.faulty[row])
        return grouped

    def detectable_faulty(self) -> List[Processor]:
        escapes = self.frame.columns["escapes"]
        return [self.faulty[row] for row in np.flatnonzero(~np.asarray(escapes))]


def generate_fleet_frame(
    spec: Optional[FleetSpec] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    window: Optional[int] = None,
    obs=None,
) -> FrameFleetPopulation:
    """Stream-generate a frame-backed population (bounded memory).

    Consumes :func:`~.population.iter_fleet_chunks`, so the resulting
    population's faulty sequence is bit-identical to
    :func:`~.population.generate_fleet` — the unit suite asserts it —
    while never holding more than one chunk of Processor state plus the
    compact SoA columns.
    """
    spec = spec or FleetSpec()
    parts: Dict[str, List[np.ndarray]] = {name: [] for name in FRAME_COLUMNS}
    arch_names: Tuple[str, ...] = ()
    chunks = 0
    for chunk in iter_fleet_chunks(spec, chunk_size=chunk_size):
        arch_names = chunk.arch_names
        for name in FRAME_COLUMNS:
            parts[name].append(getattr(chunk, name))
        chunks += 1
        if obs is not None:
            obs.inc("repro_fleet_chunks_total")
    if not arch_names:
        arch_names = tuple(sorted(fleet_arch_counts(spec)))
    columns = {
        name: (
            np.concatenate(parts[name])
            if parts[name]
            else np.empty(0, dtype=FRAME_DTYPES[name])
        )
        for name in FRAME_COLUMNS
    }
    frame = FleetFrame(
        spec=spec,
        arch_names=arch_names,
        arch_counts=fleet_arch_counts(spec),
        columns=columns,
    )
    return FrameFleetPopulation(
        frame, window=window or chunk_size, obs=obs
    )
