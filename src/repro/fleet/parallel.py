"""Process-parallel sharded fleet campaign engine.

:class:`ParallelTestPipeline` runs the same campaign as
:class:`~repro.fleet.vectorized.VectorizedTestPipeline`, split into
contiguous CPU shards dispatched across a
:class:`~repro.perf.parallel.DeterministicPool` of worker processes.
Detections and undetected ids are merged in shard order and the shared
pipeline stream finishes at its exact serial position, so the output is
**bit-identical** to the serial vectorized engine (and therefore to the
scalar engine) for any worker count and any shard size.

The obstacle to naive sharding is that the campaign's Bernoulli stream
is consumed *data-dependently*: each CPU draws one double per eligible
stage until its first detection, then one more per positive-expectation
pair — so shard *k*'s starting draw position is only known after shards
``0..k-1`` have been decided.  The engine therefore splits the work
into what is position-free and what is not:

1. **Lowering** (the dominant cost — behaviour-substream replay and the
   per-stage expectation math) consumes *no* pipeline draws, so shards
   lower in parallel, each worker returning its struct-of-arrays block.
2. **Accounting scan** (cheap): as each block arrives — in shard order,
   while later shards are still lowering — the parent walks the *real*
   pipeline stream through the shard's draws: one ``draw()`` per
   passing gate, one O(1) :meth:`~repro.rng.CountedStream.fast_forward`
   over the detection's pair draws.  This pins every shard's starting
   draw position and leaves the stream at the exact serial end
   position (checkpoints compose unchanged).
3. **Replay** (parallel, overlapped): the moment a shard is scanned it
   is dispatched back to the pool with its block and start position;
   the worker O(1)-jumps a fresh ``CountedStream(seed, "pipeline")`` to
   that position and replays the shard into real
   :class:`~repro.fleet.pipeline.Detection` objects.

Blocks travel by value (a ~100k-CPU campaign lowers to ~1.6 MB of
pickled block), so replay needs no worker-affinity tricks: any worker
can replay any shard.  Any pool failure — creation, broken worker,
worker-side exception, timeout — rewinds the stream and result to the
call's entry state and reruns the whole range on the in-process
vectorized engine, which is the identical-output slow path.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Tuple

from ..obs.context import Observability, span
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import ListTraceSink, Tracer
from ..perf.parallel import (
    DeterministicPool,
    default_workers,
    worker_trace_parent,
)
from ..testing.library import TestcaseLibrary
from .pipeline import FleetStudyResult, PipelineConfig
from .population import FleetPopulation
from .shm import SharedFleetFrame, SharedFrameHandle, shared_memory_available
from .vectorized import VectorizedTestPipeline

__all__ = ["ParallelTestPipeline"]

_KIND_DEGRADATION = "degradation"

#: Per-worker engine, built once by the pool initializer so shard tasks
#: carry only ``(start, stop)`` ranges instead of the population.
_WORKER_CTX: Optional[VectorizedTestPipeline] = None
#: Whether the parent campaign has telemetry enabled.  When true, each
#: worker task records into a fresh per-task registry and ships the
#: snapshot back with its result, so per-shard metrics survive the
#: process boundary and merge exactly in the parent.
_WORKER_OBS = False
#: Worker-side attachment to the parent's shared fleet segment; held in
#: a module global so the mapping outlives the initializer call for as
#: long as the worker process does.
_WORKER_SHM: Optional[SharedFleetFrame] = None
#: Whether the parent campaign is *tracing* (not just metering).  When
#: true, worker tasks open spans parented on the coordinator ref that
#: rode in with the task and ship their records home for stitching.
_WORKER_TRACE = False


def _worker_init(
    population, library, config, trigger_model, seed,
    obs_enabled=False, trace_enabled=False,
) -> None:
    global _WORKER_CTX, _WORKER_OBS, _WORKER_SHM, _WORKER_TRACE
    if isinstance(population, SharedFrameHandle):
        # Zero-copy path: the parent shipped a segment name instead of a
        # pickled population; attach and read columns in place.
        _WORKER_SHM = SharedFleetFrame.attach(population)
        population = _WORKER_SHM.population()
    _WORKER_CTX = VectorizedTestPipeline(
        population, library, config, trigger_model, seed
    )
    # Shards replayed in workers are this engine's parallel path; label
    # their range metrics accordingly so per-engine totals stay exact.
    _WORKER_CTX.obs_label = "parallel"
    _WORKER_OBS = bool(obs_enabled)
    _WORKER_TRACE = bool(trace_enabled)


def _task_obs() -> Tuple[Observability, Optional[ListTraceSink]]:
    """A per-task telemetry context (and its trace sink when tracing).

    One fresh registry per task keeps worker merges exact; one fresh
    in-memory sink per task keeps the shipped record list scoped to
    exactly this shard.
    """
    if not _WORKER_TRACE:
        return Observability(), None
    sink = ListTraceSink()
    return Observability(MetricsRegistry(), Tracer(sink)), sink


def _shipment(obs: Observability, sink: Optional[ListTraceSink]) -> dict:
    """Telemetry a worker task sends back with its result."""
    return {
        "metrics": obs.metrics.snapshot(),
        "trace": sink.records if sink is not None else [],
    }


def _lower_shard(task: Tuple[int, int]):
    """Phase 1: lower faulty CPUs ``[start, stop)`` to their block.

    Returns ``(block, telemetry_shipment_or_None)``.
    """
    start, stop = task
    if not _WORKER_OBS:
        return _WORKER_CTX._lower_range(start, stop), None
    obs, sink = _task_obs()
    started = time.perf_counter()
    with obs.tracer.remote_span(
        "parallel.lower", worker_trace_parent(), start=start, stop=stop,
    ):
        block = _WORKER_CTX._lower_range(start, stop)
    obs.inc("repro_parallel_tasks_total", phase="lower")
    obs.observe(
        "repro_parallel_lower_seconds", time.perf_counter() - started
    )
    return block, _shipment(obs, sink)


def _replay_shard(task):
    """Phase 3: replay one scanned shard from its pinned draw position.

    Returns ``(detections, undetected_ids, telemetry_shipment_or_None)``.
    """
    start, stop, position, block = task
    engine = _WORKER_CTX
    engine._blocks[(start, stop)] = block
    # The worker's own pipeline stream is repositioned O(1) per task, so
    # one stream serves every shard this worker replays.
    stream = engine._scalar._stream
    stream.reset_to(position)
    shard_result = FleetStudyResult(
        population_total=engine.population.total,
        arch_counts=dict(engine.population.arch_counts),
    )
    shipped = None
    if _WORKER_OBS:
        obs, sink = _task_obs()
        obs.inc("repro_parallel_tasks_total", phase="replay")
        engine.obs = obs
        try:
            with obs.tracer.remote_span(
                "parallel.replay", worker_trace_parent(),
                start=start, stop=stop, position=position,
            ):
                engine.replay_range(start, stop, shard_result, stream)
        finally:
            engine.obs = None
        shipped = _shipment(obs, sink)
    else:
        engine.replay_range(start, stop, shard_result, stream)
    return shard_result.detections, shard_result.undetected_ids, shipped


class _PoolUnusable(Exception):
    """Internal: abandon the parallel path and rerun the range serially."""


class ParallelTestPipeline:
    """Sharded multi-process campaign engine, bit-equal to serial."""

    __test__ = False  # not a pytest test class

    def __init__(
        self,
        population: FleetPopulation,
        library: TestcaseLibrary,
        config: Optional[PipelineConfig] = None,
        trigger_model=None,
        seed: int = 11,
        *,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        timeout_s: Optional[float] = None,
        health=None,
        obs=None,
    ):
        self._setup(
            VectorizedTestPipeline(
                population, library, config, trigger_model, seed, obs=obs
            ),
            workers, shard_size, timeout_s, health,
        )

    @classmethod
    def from_vectorized(
        cls,
        engine: VectorizedTestPipeline,
        *,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        timeout_s: Optional[float] = None,
        health=None,
    ) -> "ParallelTestPipeline":
        """Wrap an existing vectorized engine instead of building one.

        The parallel engine then shares the wrapped engine's pipeline
        stream (and lowering cache), which is how
        :class:`~repro.resilience.campaign.ResilientCampaign` mixes
        parallel, vectorized, and scalar shards over one stream.
        """
        self = cls.__new__(cls)
        self._setup(engine, workers, shard_size, timeout_s, health)
        return self

    def _setup(
        self,
        engine: VectorizedTestPipeline,
        workers: Optional[int],
        shard_size: Optional[int],
        timeout_s: Optional[float],
        health,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_size is not None and shard_size <= 0:
            raise ValueError("shard_size must be positive")
        self._vec = engine
        self._scalar = engine._scalar
        self.population = engine.population
        self.library = engine.library
        self.config = engine.config
        self.trigger = engine.trigger
        self.workers = workers if workers is not None else default_workers()
        self.shard_size = shard_size
        self.timeout_s = timeout_s
        self.health = health
        # Telemetry rides on the wrapped vectorized engine's context so
        # ResilientCampaign's engine mixing shares one registry.
        self.obs = engine.obs
        self._pool: Optional[DeterministicPool] = None
        self._shared: Optional[SharedFleetFrame] = None
        # Workers rebuild the engine from the *resolved* config and
        # trigger model, so defaulted and explicit construction pickle
        # the same objects.  The obs flag makes workers record per-task
        # registries and ship snapshots back with their results; the
        # trace flag additionally makes them open coordinator-parented
        # spans and ship the records for stitching.
        self._init_payload = (
            engine.population,
            engine.library,
            engine.config,
            engine.trigger,
            self._scalar.seed,
            engine.obs is not None,
            engine.obs is not None and engine.obs.tracer.enabled,
        )

    def _shm_payload(self) -> Optional[tuple]:
        """The zero-copy init payload, or ``None`` for the pickle path.

        Frame-backed populations publish their SoA columns into one
        shared segment and hand workers a few-hundred-byte handle; any
        failure (no /dev/shm, exhausted segment quota) degrades to the
        classic pickled-population payload, recorded in health.
        """
        frame = getattr(self.population, "frame", None)
        if frame is None or not shared_memory_available():
            return None
        try:
            window = getattr(
                self.population.faulty, "window", self.shard_size or 256
            )
            self._shared = SharedFleetFrame.create(frame, window=window)
        except (OSError, ValueError) as error:
            if self.health is not None:
                self.health.record(
                    _KIND_DEGRADATION,
                    f"shared-memory frame -> pickled population: {error}",
                )
            return None
        if self.obs is not None:
            self.obs.set_gauge("repro_shm_bytes", self._shared.nbytes)
        return (self._shared.handle,) + self._init_payload[1:]

    def _release_shm(self) -> None:
        if self._shared is not None:
            self._shared.close()
            self._shared = None
            if self.obs is not None:
                self.obs.set_gauge("repro_shm_bytes", 0)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down and release shared memory (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        # POSIX unlink with live worker mappings is safe: the kernel
        # frees the pages when the last mapping goes away.
        self._release_shm()

    def __enter__(self) -> "ParallelTestPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def degraded(self) -> bool:
        """Whether the current pool has permanently fallen back to serial."""
        return self._pool is not None and self._pool.degraded

    def worker_pids(self) -> List[int]:
        """PIDs of live pool worker processes (empty before first use)."""
        if self._pool is None:
            return []
        return self._pool.worker_pids()

    def set_workers(self, workers: int) -> None:
        """Re-size the pool for subsequent ranges (core re-arbitration).

        The published shared-memory segment survives the resize — only
        the worker processes are respawned, and only lazily, on the
        next parallel range.  A no-op when the count is unchanged, so
        callers can re-arbitrate at every shard boundary for free.
        Dropping to 1 routes later ranges through the in-process
        vectorized engine without ever building a pool.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers == self.workers:
            return
        self.workers = workers
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _ensure_pool(self) -> DeterministicPool:
        if self._pool is None:
            if self._shared is not None:
                # A resize dropped the pool but the segment is still
                # published; hand the new workers the existing handle
                # instead of re-publishing the columns.
                initargs = (self._shared.handle,) + self._init_payload[1:]
            else:
                initargs = self._shm_payload() or self._init_payload
            self._pool = DeterministicPool(
                workers=self.workers,
                initializer=_worker_init,
                initargs=initargs,
                health=self.health,
            )
        return self._pool

    # -- the campaign -------------------------------------------------------

    def run(self) -> FleetStudyResult:
        result = FleetStudyResult(
            population_total=self.population.total,
            arch_counts=dict(self.population.arch_counts),
        )
        self.run_range(0, len(self.population.faulty), result)
        return result

    def _shards(self, start: int, stop: int) -> List[Tuple[int, int]]:
        span = stop - start
        if self.shard_size is not None:
            size = self.shard_size
        else:
            # ~4 shards per worker: enough granularity that the parent
            # scan and replay dispatch overlap the tail of lowering,
            # without drowning in per-task dispatch overhead.
            size = max(64, math.ceil(span / (self.workers * 4)))
        return [
            (shard_start, min(shard_start + size, stop))
            for shard_start in range(start, stop, size)
        ]

    def run_range(
        self, start: int, stop: int, result: FleetStudyResult
    ) -> FleetStudyResult:
        """Run faulty CPUs ``[start, stop)``, appending into ``result``.

        Same contract as the serial engines' ``run_range``: the shared
        pipeline stream position carries in and out, so parallel shards
        compose with checkpointing, resume, and engine degradation
        unchanged.
        """
        if stop <= start:
            return result
        shards = self._shards(start, stop)
        if self.workers <= 1 or len(shards) <= 1:
            return self._vec.run_range(start, stop, result)
        stream = self._scalar._stream
        entry_draws = stream.consumed
        entry_detections = len(result.detections)
        entry_undetected = len(result.undetected_ids)
        obs = self.obs
        try:
            with span(
                obs, "parallel.run_range",
                start=start, stop=stop,
                shards=len(shards), workers=self.workers,
            ):
                return self._run_parallel(shards, result)
        except _PoolUnusable as error:
            if self.health is not None:
                self.health.record(
                    _KIND_DEGRADATION,
                    f"parallel -> vectorized (in-process): {error}",
                )
            if obs is not None:
                # Worker snapshots from the failed attempt were staged,
                # not merged, so nothing double-counts; the in-process
                # rerun below re-records the range under "vectorized",
                # keeping the campaign's telemetry complete.
                obs.inc(
                    "repro_campaign_shards_total",
                    len(shards), engine="parallel", outcome="degraded",
                )
                obs.tracer.event(
                    "parallel.degraded",
                    start=start, stop=stop, reason=str(error),
                )
            # Pool degradation is permanent; nothing will attach to the
            # published segment again, so release it now rather than at
            # close().
            self._release_shm()
            # Rewind to the call's entry state and take the identical-
            # output serial path.
            del result.detections[entry_detections:]
            del result.undetected_ids[entry_undetected:]
            stream.reset_to(entry_draws)
            return self._vec.run_range(start, stop, result)

    def _run_parallel(
        self, shards: List[Tuple[int, int]], result: FleetStudyResult
    ) -> FleetStudyResult:
        pool = self._ensure_pool()
        stream = self._scalar._stream
        schedule = self._vec._schedule()[0]
        obs = self.obs
        # Worker telemetry shipments (metric snapshots + trace records)
        # are *staged* until the whole range succeeds: if any shard
        # forces the _PoolUnusable fallback, the partial attempt's
        # telemetry is dropped along with its results and the serial
        # rerun records the range instead.
        staging: List[dict] = []
        # The open parallel.run_range span (run_range entered it on
        # this thread) is the coordinator ref worker lowering spans
        # parent on.
        range_ref = obs.tracer.current_ref() if obs is not None else None
        lower_futures = []
        for shard in shards:
            future = pool.submit(_lower_shard, shard, trace_parent=range_ref)
            if future is None:
                raise _PoolUnusable("pool unavailable for shard lowering")
            lower_futures.append(future)
        replay_futures = []
        for index, (shard_start, shard_stop) in enumerate(shards):
            block, shipped = self._await(
                pool, lower_futures[index], shard_start, shard_stop
            )
            if shipped is not None:
                staging.append(shipped)
            position = stream.consumed
            with span(
                obs, "parallel.scan",
                shard=index, start=shard_start, stop=shard_stop,
                position=position,
            ):
                # Captured while the scan span is open, so each shard's
                # worker replay hangs under that shard's scan span.
                scan_ref = (
                    obs.tracer.current_ref() if obs is not None else None
                )
                self._scan(schedule, block, shard_start, shard_stop, stream)
            future = pool.submit(
                _replay_shard, (shard_start, shard_stop, position, block),
                trace_parent=scan_ref,
            )
            if future is None:
                raise _PoolUnusable("pool unavailable for shard replay")
            replay_futures.append(future)
        for index, (shard_start, shard_stop) in enumerate(shards):
            detections, undetected, shipped = self._await(
                pool, replay_futures[index], shard_start, shard_stop
            )
            if shipped is not None:
                staging.append(shipped)
            result.detections.extend(detections)
            result.undetected_ids.extend(undetected)
        if obs is not None:
            for shipped in staging:
                obs.metrics.merge(shipped["metrics"])
                for record in shipped["trace"]:
                    obs.tracer.emit_foreign(record)
            obs.inc(
                "repro_campaign_shards_total",
                len(shards), engine="parallel", outcome="ok",
            )
        return result

    def _await(self, pool, future, shard_start: int, shard_stop: int):
        """One shard outcome off the pool, or :class:`_PoolUnusable`."""
        timeout = (
            self.timeout_s * (shard_stop - shard_start)
            if self.timeout_s is not None
            else None
        )
        try:
            outcome = future.result(timeout=timeout)
        except FutureTimeout:
            pool.degrade(
                f"shard [{shard_start}, {shard_stop}) exceeded {timeout:.1f}s"
            )
            raise _PoolUnusable("shard timeout") from None
        except BrokenProcessPool:
            pool.degrade("process pool broke (worker died)")
            raise _PoolUnusable("broken process pool") from None
        if outcome[0] != "ok":
            # Worker-side exception.  The serial rerun recomputes the
            # same shard in-process, so a *deterministic* failure will
            # surface there with its natural traceback.
            cause = outcome[4]
            pool.degrade(
                f"worker failed on shard [{shard_start}, {shard_stop}): "
                f"{cause}"
            )
            raise _PoolUnusable(cause)
        return outcome[1][0]

    @staticmethod
    def _scan(schedule, block, start: int, stop: int, stream) -> None:
        """Walk the real stream through one shard's draws (no results).

        Mirrors the replay loop's stream consumption exactly: one draw
        per eligible positive-probability stage until the first
        detection, then ``nnz`` skipped draws for the failing-testcase
        Bernoullis — pinning the next shard's start position.
        """
        cpu_skip, cpu_onset, _, _, _, cpu_probs, kind_nnz = block
        draw = stream.draw
        fast_forward = stream.fast_forward
        for local in range(stop - start):
            if cpu_skip[local]:
                continue
            onset = cpu_onset[local]
            probs = cpu_probs[local]
            for kind, _name, day in schedule:
                if day < onset:
                    continue
                probability = probs[kind]
                if probability <= 0.0:
                    continue
                if draw() < probability:
                    fast_forward(kind_nnz[kind][local])
                    break
