"""Fail-in-place capacity accounting (§3.2's Hyrax discussion).

    "Large companies decommission the whole faulty processor ... it
    could be worthwhile to investigate the feasibility of continuing to
    utilize the unaffected cores within a faulty processor [56]."

Given a detected-faulty population, this module compares the two
decommission policies over the fleet:

* **whole-processor** (the industry baseline): every core of every
  detected CPU is lost;
* **fine-grained** (Farron's §7.1 policy): mask the defective cores,
  deprecate the processor only when more than
  :data:`~repro.core.pool.DEPRECATION_CORE_THRESHOLD` cores are bad.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..core.pool import DEPRECATION_CORE_THRESHOLD
from ..cpu.processor import Processor

__all__ = ["SalvageReport", "salvage_study"]


@dataclass(frozen=True)
class SalvageReport:
    """Fleet-wide capacity outcome of the two decommission policies."""

    faulty_processors: int
    total_cores_on_faulty: int
    #: Cores lost under whole-processor decommission (== total above).
    cores_lost_whole_processor: int
    #: Cores lost under fine-grained decommission.
    cores_lost_fine_grained: int
    #: Faulty CPUs kept partially in service by fine-grained masking.
    processors_kept: int
    processors_deprecated: int

    @property
    def cores_salvaged(self) -> int:
        return self.cores_lost_whole_processor - self.cores_lost_fine_grained

    @property
    def salvage_fraction(self) -> float:
        """Share of otherwise-discarded capacity that stays in service."""
        if self.cores_lost_whole_processor == 0:
            return 0.0
        return self.cores_salvaged / self.cores_lost_whole_processor


def salvage_study(faulty: Iterable[Processor]) -> SalvageReport:
    """Apply both decommission policies to a faulty population."""
    processors = list(faulty)
    total_cores = 0
    lost_fine = 0
    kept = 0
    deprecated = 0
    for processor in processors:
        cores = processor.arch.physical_cores
        total_cores += cores
        defective = len(processor.defective_cores())
        if defective > DEPRECATION_CORE_THRESHOLD:
            lost_fine += cores
            deprecated += 1
        else:
            lost_fine += defective
            kept += 1
    return SalvageReport(
        faulty_processors=len(processors),
        total_cores_on_faulty=total_cores,
        cores_lost_whole_processor=total_cores,
        cores_lost_fine_grained=lost_fine,
        processors_kept=kept,
        processors_deprecated=deprecated,
    )
