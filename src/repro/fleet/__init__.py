"""Fleet simulation: population, topology, staged test pipeline, stats."""

from .population import FleetPopulation, FleetSpec, OnsetMixture, generate_fleet
from .machine import (
    Cluster,
    Datacenter,
    FleetTopology,
    Machine,
    build_topology,
)
from .pipeline import (
    Detection,
    FleetStudyResult,
    PipelineConfig,
    StageConfig,
    TestPipeline,
)
from .parallel import ParallelTestPipeline
from .salvage import SalvageReport, salvage_study
from .vectorized import VectorizedTestPipeline
from . import stats

__all__ = [
    "FleetPopulation",
    "FleetSpec",
    "OnsetMixture",
    "generate_fleet",
    "Cluster",
    "Datacenter",
    "FleetTopology",
    "Machine",
    "build_topology",
    "Detection",
    "FleetStudyResult",
    "PipelineConfig",
    "StageConfig",
    "TestPipeline",
    "VectorizedTestPipeline",
    "ParallelTestPipeline",
    "SalvageReport",
    "salvage_study",
    "stats",
]
