"""Fleet simulation: population, topology, staged test pipeline, stats."""

from .population import (
    FleetChunk,
    FleetPopulation,
    FleetSpec,
    OnsetMixture,
    fleet_arch_counts,
    generate_fleet,
    iter_fleet_chunks,
)
from .frame import (
    FleetFrame,
    FrameFleetPopulation,
    LazyFaultyList,
    generate_fleet_frame,
)
from .shm import SharedFleetFrame, SharedFrameHandle, shared_memory_available
from .machine import (
    Cluster,
    Datacenter,
    FleetTopology,
    Machine,
    build_topology,
)
from .pipeline import (
    Detection,
    FleetStudyResult,
    PipelineConfig,
    StageConfig,
    TestPipeline,
)
from .parallel import ParallelTestPipeline
from .salvage import SalvageReport, salvage_study
from .vectorized import VectorizedTestPipeline
from . import stats

__all__ = [
    "FleetChunk",
    "FleetPopulation",
    "FleetSpec",
    "OnsetMixture",
    "fleet_arch_counts",
    "generate_fleet",
    "iter_fleet_chunks",
    "FleetFrame",
    "FrameFleetPopulation",
    "LazyFaultyList",
    "generate_fleet_frame",
    "SharedFleetFrame",
    "SharedFrameHandle",
    "shared_memory_available",
    "Cluster",
    "Datacenter",
    "FleetTopology",
    "Machine",
    "build_topology",
    "Detection",
    "FleetStudyResult",
    "PipelineConfig",
    "StageConfig",
    "TestPipeline",
    "VectorizedTestPipeline",
    "ParallelTestPipeline",
    "SalvageReport",
    "salvage_study",
    "stats",
]
