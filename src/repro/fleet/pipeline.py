"""The fleet test pipeline: factory → datacenter → re-install → regular.

§2.4 / Figure 1: pre-production testing happens after factory delivery,
after datacenter delivery, and after system re-installation; in
production, machines are regularly tested in groups on a months-long
cycle.  Every stage runs the whole toolchain with equal per-testcase
durations (§2.4).

Detection is computed from the same trigger law the record-level runner
uses, closed-form instead of sampled per 10-second interval — a CPU's
probability of failing a stage is ``1 − exp(−Σ expected errors)`` over
its matching (testcase, core) settings — which is what makes a
million-CPU, 32-month campaign tractable while remaining consistent
with the detailed runs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..rng import CountedStream
from ..cpu.defects import Defect
from ..cpu.features import Feature
from ..cpu.processor import Processor
from ..faults.trigger import TriggerModel
from ..testing.library import TestcaseLibrary
from ..testing.testcase import ConsistencyKind, Testcase
from .population import FleetPopulation

__all__ = [
    "StageConfig",
    "PipelineConfig",
    "Detection",
    "FleetStudyResult",
    "TestPipeline",
    "record_range_metrics",
]

#: 32 months (§2.4: "we have conducted SDC testing ... over 32 months").
STUDY_HORIZON_DAYS = 32 * 30.4


def record_range_metrics(
    obs,
    engine: str,
    result: "FleetStudyResult",
    entry_detections: int,
    entry_undetected: int,
    draws: int,
    cpus: int,
    seconds: float,
) -> None:
    """Account one *completed* campaign range into ``obs``.

    Shared by all three engines (the parallel engine's workers call it
    through :meth:`VectorizedTestPipeline.replay_range`).  Called only
    after a range finishes, so retried/abandoned attempts never pollute
    the exact per-engine totals the worker-aggregation tests pin.
    """
    obs.inc("repro_campaign_cpus_total", cpus, engine=engine)
    for detection in result.detections[entry_detections:]:
        obs.inc(
            "repro_campaign_detections_total",
            engine=engine, stage=detection.stage_name,
        )
    undetected = len(result.undetected_ids) - entry_undetected
    if undetected:
        obs.inc(
            "repro_campaign_undetected_total", undetected, engine=engine
        )
    if draws:
        obs.inc("repro_campaign_draws_total", draws, engine=engine)
    obs.observe("repro_campaign_range_seconds", seconds, engine=engine)


@dataclass(frozen=True)
class StageConfig:
    """One test timing of Figure 1."""

    name: str
    time_days: float
    per_testcase_s: float
    #: Core temperature reached while testing (the toolchain's testcases
    #: are stressful and run concurrently on all cores).
    test_temp_c: float
    #: Period for recurring stages (regular tests); None = one-shot.
    recurring_days: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("stage name must be non-empty")
        if not math.isfinite(self.per_testcase_s) or self.per_testcase_s <= 0:
            raise ConfigurationError(
                f"stage {self.name!r}: per_testcase_s must be a positive "
                f"finite number, got {self.per_testcase_s!r}"
            )
        if not math.isfinite(self.time_days) or self.time_days < 0:
            raise ConfigurationError(
                f"stage {self.name!r}: time_days must be a non-negative "
                f"finite number of days since factory delivery, got "
                f"{self.time_days!r}"
            )
        if not math.isfinite(self.test_temp_c):
            raise ConfigurationError(
                f"stage {self.name!r}: test_temp_c must be finite, got "
                f"{self.test_temp_c!r}"
            )
        if self.recurring_days is not None and (
            not math.isfinite(self.recurring_days) or self.recurring_days <= 0
        ):
            raise ConfigurationError(
                f"stage {self.name!r}: recurring_days must be None (one-shot) "
                f"or a positive finite period, got {self.recurring_days!r}"
            )


@dataclass(frozen=True)
class PipelineConfig:
    """The default schedule, calibrated to §2.4/§7's descriptions."""

    stages: Tuple[StageConfig, ...] = (
        # Pre-production stages get "adequate" resources (§7.1).
        StageConfig("factory", 0.0, per_testcase_s=600.0, test_temp_c=80.0),
        StageConfig("datacenter", 21.0, per_testcase_s=300.0, test_temp_c=78.0),
        StageConfig("reinstall", 45.0, per_testcase_s=600.0, test_temp_c=80.0),
        # Regular tests: every 3 months, 1 minute per testcase — the
        # 633-minute ≈ 10.55 h baseline round of §7.2.
        StageConfig(
            "regular", 95.0, per_testcase_s=60.0, test_temp_c=76.0,
            recurring_days=90.0,
        ),
    )
    horizon_days: float = STUDY_HORIZON_DAYS

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("pipeline needs at least one stage")
        if not math.isfinite(self.horizon_days) or self.horizon_days <= 0:
            raise ConfigurationError(
                f"horizon_days must be a positive finite number, got "
                f"{self.horizon_days!r}"
            )
        # Both engines cache per-stage expectations by stage *name*;
        # same-named stages with different parameters would silently
        # reuse the wrong cache entry, so reject them up front.
        seen: Dict[str, StageConfig] = {}
        for stage in self.stages:
            twin = seen.setdefault(stage.name, stage)
            if twin != stage:
                raise ConfigurationError(
                    f"stages named {stage.name!r} have conflicting "
                    f"parameters; same-named stages must be identical"
                )

    def pre_production_stage_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.stages if s.recurring_days is None)


@dataclass(frozen=True)
class Detection:
    """One faulty CPU caught by the pipeline."""

    processor_id: str
    arch_name: str
    stage_name: str
    day: float
    failing_testcase_ids: Tuple[str, ...]

    def to_row(self) -> list:
        """Compact JSON-able row (checkpoint/verdict wire format).

        ``day`` survives bit-for-bit: JSON float encoding is CPython's
        shortest-round-trip repr.
        """
        return [
            self.processor_id,
            self.arch_name,
            self.stage_name,
            self.day,
            list(self.failing_testcase_ids),
        ]

    @classmethod
    def from_row(cls, row: list) -> "Detection":
        return cls(
            processor_id=row[0],
            arch_name=row[1],
            stage_name=row[2],
            day=row[3],
            failing_testcase_ids=tuple(row[4]),
        )


@dataclass
class FleetStudyResult:
    """Everything the 32-month campaign produced."""

    population_total: int
    arch_counts: Dict[str, int]
    detections: List[Detection] = field(default_factory=list)
    undetected_ids: List[str] = field(default_factory=list)

    def detections_by_stage(self) -> Dict[str, List[Detection]]:
        grouped: Dict[str, List[Detection]] = {}
        for detection in self.detections:
            grouped.setdefault(detection.stage_name, []).append(detection)
        return grouped

    def detections_by_arch(self) -> Dict[str, List[Detection]]:
        grouped: Dict[str, List[Detection]] = {}
        for detection in self.detections:
            grouped.setdefault(detection.arch_name, []).append(detection)
        return grouped

    def failing_testcases(self) -> Set[str]:
        """Union of testcases that ever detected an error (Obs. 11)."""
        failing: Set[str] = set()
        for detection in self.detections:
            failing.update(detection.failing_testcase_ids)
        return failing

    def to_dict(self) -> Dict[str, object]:
        """JSON-able verdict document; round-trips bit-exactly through
        :meth:`from_dict` (detection order, float days, id lists)."""
        return {
            "population_total": self.population_total,
            "arch_counts": dict(self.arch_counts),
            "detections": [d.to_row() for d in self.detections],
            "undetected": list(self.undetected_ids),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetStudyResult":
        return cls(
            population_total=int(data["population_total"]),
            arch_counts=dict(data["arch_counts"]),
            detections=[
                Detection.from_row(row) for row in data.get("detections", [])
            ],
            undetected_ids=list(data.get("undetected", [])),
        )


class TestPipeline:
    """Runs the population through the staged test schedule."""

    __test__ = False  # not a pytest test class

    def __init__(
        self,
        population: FleetPopulation,
        library: TestcaseLibrary,
        config: Optional[PipelineConfig] = None,
        trigger_model: Optional[TriggerModel] = None,
        seed: int = 11,
        *,
        obs=None,
    ):
        self.population = population
        self.library = library
        self.config = config or PipelineConfig()
        self.trigger = trigger_model or TriggerModel()
        self.seed = seed
        #: Optional :class:`repro.obs.Observability` context.  ``None``
        #: (the default) disables telemetry; the only cost left on the
        #: hot path is one attribute check per ``run_range`` call.
        self.obs = obs
        self.obs_label = "scalar"
        #: The campaign's single Bernoulli stream.  A counted stream so
        #: checkpointing can record the exact draw position and a
        #: resumed run continues bit-identically (see repro.resilience).
        self._stream = CountedStream(seed, "pipeline")

    # -- matching settings ---------------------------------------------------

    def _matching_settings(self, defect: Defect) -> List[Tuple[Testcase, float]]:
        """(testcase, usage) pairs that can trigger a defect."""
        matches: List[Tuple[Testcase, float]] = []
        if defect.is_consistency:
            wanted = (
                ConsistencyKind.COHERENCE
                if Feature.CACHE in defect.features
                else ConsistencyKind.TXMEM
            )
            for testcase in self.library.consistency_testcases():
                if testcase.consistency_kind is wanted or (
                    len(defect.features) > 1
                ):
                    matches.append((testcase, testcase.consistency_ops_per_s))
            return matches
        for mnemonic in defect.instructions:
            for testcase in self.library.using_instruction(mnemonic):
                matches.append((testcase, testcase.usage_per_s(mnemonic)))
        return matches

    def _multiplier_sum(self, defect: Defect) -> float:
        return sum(
            defect.core_multiplier(core) for core in defect.core_ids
        )

    # -- stage detection probability -------------------------------------------

    def expected_stage_errors(
        self,
        defect: Defect,
        stage: StageConfig,
        settings: Optional[List[Tuple[Testcase, float]]] = None,
    ) -> Dict[str, float]:
        """Per-testcase expected error counts for one stage execution."""
        if settings is None:
            settings = self._matching_settings(defect)
        multiplier_sum = self._multiplier_sum(defect)
        expectations: Dict[str, float] = {}
        if not settings:
            return expectations
        # core_multiplier is folded in via multiplier_sum; evaluate
        # the law once on a unit-multiplier reference core.
        reference_core = defect.core_ids[0]
        reference_mult = defect.core_multiplier(reference_core)
        if reference_mult == 0.0:
            return expectations
        for testcase, usage in settings:
            freq = self.trigger.occurrence_frequency(
                defect,
                testcase.testcase_id,
                stage.test_temp_c,
                usage,
                reference_core,
            )
            per_unit = freq / reference_mult
            expected = per_unit * multiplier_sum * stage.per_testcase_s / 60.0
            if expected > 0.0:
                expectations[testcase.testcase_id] = (
                    expectations.get(testcase.testcase_id, 0.0) + expected
                )
        return expectations

    @staticmethod
    def _detection_probability(expectations: Dict[str, float]) -> float:
        total = sum(expectations.values())
        return 1.0 - math.exp(-total)

    def _sample_failing_testcases(
        self, expectations: Dict[str, float]
    ) -> Tuple[str, ...]:
        """Which testcases fired, given that at least one did."""
        failing = [
            tc_id
            for tc_id, expected in expectations.items()
            if self._stream.draw() < 1.0 - math.exp(-expected)
        ]
        if not failing and expectations:
            failing = [max(expectations, key=expectations.get)]
        return tuple(sorted(failing))

    # -- the campaign -------------------------------------------------------------

    def _stage_occurrences(self) -> List[Tuple[StageConfig, float]]:
        occurrences: List[Tuple[StageConfig, float]] = []
        for stage in self.config.stages:
            if stage.recurring_days is None:
                occurrences.append((stage, stage.time_days))
            else:
                day = stage.time_days
                while day <= self.config.horizon_days:
                    occurrences.append((stage, day))
                    day += stage.recurring_days
        occurrences.sort(key=lambda pair: pair[1])
        return occurrences

    def run(self) -> FleetStudyResult:
        """Run every faulty CPU through the schedule until detection."""
        result = FleetStudyResult(
            population_total=self.population.total,
            arch_counts=dict(self.population.arch_counts),
        )
        self.run_range(0, len(self.population.faulty), result)
        return result

    def run_range(
        self, start: int, stop: int, result: FleetStudyResult
    ) -> FleetStudyResult:
        """Run faulty CPUs ``[start, stop)``, appending into ``result``.

        The campaign stream position carries across calls, so covering
        the population in consecutive ranges (possibly interleaved with
        the vectorized engine, or across a checkpoint/resume boundary)
        produces bit-identical output to one :meth:`run` call.
        """
        obs = self.obs
        if obs is not None:
            started = time.perf_counter()
            entry_draws = self._stream.consumed
            entry_detections = len(result.detections)
            entry_undetected = len(result.undetected_ids)
        occurrences = self._stage_occurrences()
        for processor in self.population.faulty[start:stop]:
            detection = self._run_processor(processor, occurrences)
            if detection is None:
                result.undetected_ids.append(processor.processor_id)
            else:
                result.detections.append(detection)
        if obs is not None:
            record_range_metrics(
                obs, self.obs_label, result,
                entry_detections, entry_undetected,
                self._stream.consumed - entry_draws,
                stop - start,
                time.perf_counter() - started,
            )
        return result

    def _run_processor(
        self,
        processor: Processor,
        occurrences: Sequence[Tuple[StageConfig, float]],
    ) -> Optional[Detection]:
        defect = processor.defects[0]
        if defect.escapes_toolchain:
            return None
        settings = self._matching_settings(defect)
        if not settings:
            return None
        # Expectation per stage config is time-invariant, so compute
        # once per distinct stage and reuse across recurrences.
        per_stage: Dict[str, Dict[str, float]] = {}
        for stage, day in occurrences:
            if not defect.active_at(day):
                continue
            expectations = per_stage.get(stage.name)
            if expectations is None:
                expectations = self.expected_stage_errors(defect, stage, settings)
                per_stage[stage.name] = expectations
            probability = self._detection_probability(expectations)
            if probability > 0.0 and self._stream.draw() < probability:
                return Detection(
                    processor_id=processor.processor_id,
                    arch_name=processor.arch.name,
                    stage_name=stage.name,
                    day=day,
                    failing_testcase_ids=self._sample_failing_testcases(
                        expectations
                    ),
                )
        return None
