"""Fleet topology: machines, clusters, and data centers.

The study spans "hundreds of clusters deployed in 28 data centers"
across 14 countries (§2.1), and regular testing proceeds in machine
groups: "machines will be regularly tested in groups.  Testing for each
group lasts about 2 weeks, and testing for the whole fleet needs
months" (§2.4).  The topology here exists to realize that staggered
group schedule and to give per-datacenter accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from ..errors import ConfigurationError
from ..rng import substream
from ..cpu.processor import Processor
from .population import FleetPopulation

__all__ = ["Machine", "Cluster", "Datacenter", "FleetTopology", "build_topology"]

N_DATACENTERS = 28  # §1
N_COUNTRIES = 14


@dataclass
class Machine:
    """One server; in this fleet a machine hosts one processor."""

    machine_id: str
    processor: Processor


@dataclass
class Cluster:
    cluster_id: str
    machines: List[Machine] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.machines)


@dataclass
class Datacenter:
    datacenter_id: str
    country: str
    clusters: List[Cluster] = field(default_factory=list)

    def machines(self) -> Iterator[Machine]:
        for cluster in self.clusters:
            yield from cluster.machines


@dataclass
class FleetTopology:
    """Datacenters plus the regular-testing group schedule.

    Only *faulty* machines are materialized (healthy ones are counted
    in the population); the group schedule nonetheless spaces test
    times as if the whole fleet were being cycled.
    """

    datacenters: List[Datacenter]
    #: Days between successive groups starting their regular-test slot.
    group_stagger_days: float = 14.0
    #: Number of groups the fleet is divided into; whole-fleet coverage
    #: therefore takes ``n_groups * group_stagger_days`` days — months,
    #: as §2.4 describes.
    n_groups: int = 6

    def machines(self) -> List[Machine]:
        return [m for dc in self.datacenters for m in dc.machines()]

    def group_of(self, machine: Machine) -> int:
        """Stable group assignment for the staggered schedule."""
        return sum(machine.machine_id.encode()) % self.n_groups

    def regular_test_offset_days(self, machine: Machine) -> float:
        """Day offset of a machine's slot within each regular round."""
        return self.group_of(machine) * self.group_stagger_days


def build_topology(
    population: FleetPopulation,
    n_datacenters: int = N_DATACENTERS,
    n_countries: int = N_COUNTRIES,
    clusters_per_datacenter: int = 12,
    seed: int = 7,
) -> FleetTopology:
    """Distribute the population's faulty machines over a topology."""
    if n_datacenters <= 0 or n_countries <= 0 or clusters_per_datacenter <= 0:
        raise ConfigurationError("topology sizes must be positive")
    rng = substream(seed, "topology")
    datacenters = [
        Datacenter(
            datacenter_id=f"DC{i:02d}",
            country=f"country-{i % n_countries:02d}",
            clusters=[
                Cluster(cluster_id=f"DC{i:02d}-C{j:02d}")
                for j in range(clusters_per_datacenter)
            ],
        )
        for i in range(n_datacenters)
    ]
    for index, processor in enumerate(population.faulty):
        dc = datacenters[int(rng.integers(n_datacenters))]
        cluster = dc.clusters[int(rng.integers(clusters_per_datacenter))]
        cluster.machines.append(
            Machine(machine_id=f"M{index:06d}", processor=processor)
        )
    return FleetTopology(datacenters=datacenters)
