"""Fleet-level failure statistics (Tables 1-2, Figures 2-3, Obs. 1-3).

Every number here is *measured* from a simulated campaign's
:class:`~repro.fleet.pipeline.FleetStudyResult`; the paper's values are
calibration targets, re-printed beside measurements by the benchmark
harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set

from ..cpu.features import DataType, Feature, VULNERABLE_FEATURES
from ..cpu.processor import Processor
from ..units import permyriad
from .pipeline import FleetStudyResult
from .population import FleetPopulation

__all__ = [
    "timing_failure_rates",
    "arch_failure_rates",
    "overall_failure_rate",
    "feature_proportions",
    "datatype_proportions",
    "single_core_fraction",
    "ineffective_testcase_count",
]


def overall_failure_rate(result: FleetStudyResult) -> float:
    """Detected-faulty fraction of the whole population (Obs. 1)."""
    return len(result.detections) / result.population_total


def timing_failure_rates(result: FleetStudyResult) -> Dict[str, float]:
    """Table 1: failure rate per test timing, in fleet fraction."""
    by_stage = result.detections_by_stage()
    rates = {
        stage: len(detections) / result.population_total
        for stage, detections in by_stage.items()
    }
    rates["total"] = overall_failure_rate(result)
    return rates


def timing_failure_rates_permyriad(result: FleetStudyResult) -> Dict[str, float]:
    """Table 1 in the paper's permyriad units."""
    return {
        stage: permyriad(rate)
        for stage, rate in timing_failure_rates(result).items()
    }


def pre_production_fraction(
    result: FleetStudyResult, pre_stage_names: Sequence[str]
) -> float:
    """Share of all detections made before production (Obs. 2: 90.36%)."""
    if not result.detections:
        return 0.0
    pre = sum(
        1
        for detection in result.detections
        if detection.stage_name in set(pre_stage_names)
    )
    return pre / len(result.detections)


def arch_failure_rates(result: FleetStudyResult) -> Dict[str, float]:
    """Table 2: per-micro-architecture detected failure rate (fraction)."""
    by_arch = result.detections_by_arch()
    return {
        arch: len(by_arch.get(arch, [])) / count
        for arch, count in result.arch_counts.items()
        if count > 0
    }


def arch_failure_rates_permyriad(result: FleetStudyResult) -> Dict[str, float]:
    return {
        arch: permyriad(rate)
        for arch, rate in arch_failure_rates(result).items()
    }


def _detected_processors(
    result: FleetStudyResult, population: FleetPopulation
) -> List[Processor]:
    detected_ids = {d.processor_id for d in result.detections}
    return [p for p in population.faulty if p.processor_id in detected_ids]


def feature_proportions(
    result: FleetStudyResult, population: FleetPopulation
) -> Dict[Feature, float]:
    """Figure 2: proportion of faulty CPUs per defective feature.

    Proportions can sum past 1 because one defect may span multiple
    features (MIX1-style fused vector/FPU faults).
    """
    processors = _detected_processors(result, population)
    if not processors:
        return {f: 0.0 for f in VULNERABLE_FEATURES}
    return {
        feature: sum(
            1 for p in processors if feature in p.defective_features()
        )
        / len(processors)
        for feature in VULNERABLE_FEATURES
    }


def datatype_proportions(
    result: FleetStudyResult, population: FleetPopulation
) -> Dict[DataType, float]:
    """Figure 3: proportion of faulty CPUs affecting each datatype."""
    processors = _detected_processors(result, population)
    if not processors:
        return {}
    counts: Dict[DataType, int] = {}
    for processor in processors:
        affected: Set[DataType] = set()
        for defect in processor.defects:
            affected.update(defect.datatypes)
        for dtype in affected:
            counts[dtype] = counts.get(dtype, 0) + 1
    return {
        dtype: count / len(processors) for dtype, count in counts.items()
    }


def single_core_fraction(
    result: FleetStudyResult, population: FleetPopulation
) -> float:
    """Observation 4: fraction of faulty CPUs with one defective core."""
    processors = _detected_processors(result, population)
    if not processors:
        return 0.0
    single = sum(1 for p in processors if len(p.defective_cores()) == 1)
    return single / len(processors)


def ineffective_testcase_count(
    result: FleetStudyResult, toolchain_size: int
) -> int:
    """Observation 11: testcases that never detected any error."""
    return toolchain_size - len(result.failing_testcases())
