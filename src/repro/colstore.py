"""Self-checking on-disk column store for out-of-core analytics.

Fleet-scale campaigns produce record populations that no longer fit
comfortably in RAM next to the population that generated them; the
out-of-core path spills struct-of-arrays frames to disk and reads them
back as memory-mapped columns, so analytics stream pages on demand
instead of holding every record resident.

The container follows the campaign checkpoint conventions
(:mod:`repro.resilience.checkpoint`) without importing that package
(this module sits below the fleet/resilience layers):

* **one ``.npy`` file per column** — plain NumPy format, no pickling,
  so a reader maps the column zero-copy (``np.load(mmap_mode="r")``);
* **atomic writes** — every column and the manifest go through a temp
  file, ``fsync``, ``os.replace``, and a parent-directory fsync, so a
  crash mid-spill leaves either the previous store or an incomplete one
  that fails its check, never a silently torn column (and a crash just
  after a spill cannot make a finished store vanish);
* **CRC-32 self-check** — the manifest records each column file's
  CRC-32, dtype, shape, and byte size, and is itself a canonical-JSON
  document carrying its own CRC.  A default read verifies *metadata
  only* (O(columns), not O(bytes)); ``verify=True`` re-hashes every
  column file for the paranoid path.

The manifest is written **last**: a store is valid iff its manifest
parses and self-checks, which is what makes the write atomic at the
store level despite spanning multiple files.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from .errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
)
from .fsutil import replace_and_sync_directory

__all__ = [
    "COLSTORE_FORMAT",
    "COLSTORE_VERSION",
    "MANIFEST_NAME",
    "write_columns",
    "read_columns",
]

COLSTORE_FORMAT = "repro-column-store"
COLSTORE_VERSION = 1
MANIFEST_NAME = "manifest.json"

_CRC_CHUNK = 1 << 20


def _canonical(payload: Dict[str, object]) -> bytes:
    """Canonical manifest payload bytes — the CRC domain (matches the
    checkpoint container's encoding rules)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _file_crc32(path: Path) -> int:
    """CRC-32 of a file, streamed in chunks (never loads it whole)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(_CRC_CHUNK)
            if not block:
                return crc
            crc = zlib.crc32(block, crc)


def _atomic_replace(tmp: Path, path: Path) -> None:
    try:
        replace_and_sync_directory(tmp, path)
    except OSError as error:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise CheckpointError(
            f"cannot finalize column-store file {path}: {error}"
        ) from error


def write_columns(
    directory: os.PathLike,
    columns: Dict[str, np.ndarray],
    meta: Optional[Dict[str, object]] = None,
    obs=None,
) -> int:
    """Spill named columns into ``directory``; returns bytes written.

    Column names become file names, so they must be simple identifiers.
    An existing store at the same path is replaced column-by-column;
    the new manifest only lands (atomically) after every column did.
    When ``obs`` is given, the spilled bytes are counted into
    ``repro_spill_bytes_total``.
    """
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise CheckpointError(
            f"cannot create column store {directory}: {error}"
        ) from error
    manifest_columns: Dict[str, object] = {}
    total_bytes = 0
    for name, array in columns.items():
        if not name.isidentifier():
            raise CheckpointError(
                f"column name {name!r} is not a valid identifier"
            )
        arr = np.ascontiguousarray(array)
        path = directory / f"{name}.npy"
        tmp = directory / f"{name}.npy.tmp"
        try:
            with open(tmp, "wb") as handle:
                np.lib.format.write_array(handle, arr, allow_pickle=False)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as error:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise CheckpointError(
                f"cannot write column {name!r} to {directory}: {error}"
            ) from error
        _atomic_replace(tmp, path)
        size = path.stat().st_size
        total_bytes += size
        manifest_columns[name] = {
            "file": path.name,
            "crc32": _file_crc32(path),
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "bytes": size,
        }
    payload = {"columns": manifest_columns, "meta": dict(meta or {})}
    document = {
        "format": COLSTORE_FORMAT,
        "version": COLSTORE_VERSION,
        "crc32": zlib.crc32(_canonical(payload)),
        "payload": payload,
    }
    manifest = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    body = json.dumps(document, allow_nan=False).encode("utf-8")
    try:
        with open(tmp, "wb") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as error:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise CheckpointError(
            f"cannot write column-store manifest {manifest}: {error}"
        ) from error
    _atomic_replace(tmp, manifest)
    total_bytes += manifest.stat().st_size
    if obs is not None:
        obs.inc("repro_spill_bytes_total", total_bytes)
    return total_bytes


def _load_manifest(directory: Path) -> Dict[str, object]:
    manifest = directory / MANIFEST_NAME
    try:
        raw = manifest.read_bytes()
    except OSError as error:
        raise CheckpointError(
            f"cannot read column-store manifest {manifest}: {error}"
        ) from error
    try:
        document = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CheckpointCorruptError(
            f"column-store manifest {manifest} is not valid JSON "
            f"(torn write?): {error}"
        ) from error
    if not isinstance(document, dict) or document.get("format") != COLSTORE_FORMAT:
        raise CheckpointCorruptError(
            f"{manifest} lacks the {COLSTORE_FORMAT!r} header"
        )
    version = document.get("version")
    if version != COLSTORE_VERSION:
        raise CheckpointVersionError(
            f"{manifest} has format version {version!r}; this build reads "
            f"version {COLSTORE_VERSION}"
        )
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointCorruptError(f"{manifest} has no payload object")
    crc = zlib.crc32(_canonical(payload))
    if crc != document.get("crc32"):
        raise CheckpointCorruptError(
            f"{manifest} failed its CRC self-check "
            f"(stored {document.get('crc32')!r}, computed {crc})"
        )
    return payload


def read_columns(
    directory: os.PathLike,
    mmap: bool = True,
    verify: bool = False,
) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Load a spilled store: ``(columns, meta)``.

    The default is the out-of-core fast path: columns come back as
    read-only memory maps and only *metadata* is checked (manifest CRC,
    per-column file size / dtype / shape), which is O(columns) no
    matter how many gigabytes the store holds.  ``verify=True`` also
    re-hashes every column file against its recorded CRC-32 before
    mapping — O(bytes), for integrity audits.  ``mmap=False`` reads
    columns fully into memory.
    """
    directory = Path(directory)
    payload = _load_manifest(directory)
    described = payload.get("columns")
    if not isinstance(described, dict):
        raise CheckpointCorruptError(
            f"column store {directory} manifest describes no columns"
        )
    columns: Dict[str, np.ndarray] = {}
    for name, entry in described.items():
        path = directory / str(entry["file"])
        try:
            size = path.stat().st_size
        except OSError as error:
            raise CheckpointCorruptError(
                f"column store {directory} is missing column file "
                f"{entry['file']!r}: {error}"
            ) from error
        if size != entry["bytes"]:
            raise CheckpointCorruptError(
                f"column {name!r} in {directory} is {size} bytes; manifest "
                f"recorded {entry['bytes']} (torn write?)"
            )
        if verify:
            crc = _file_crc32(path)
            if crc != entry["crc32"]:
                raise CheckpointCorruptError(
                    f"column {name!r} in {directory} failed its CRC "
                    f"self-check (stored {entry['crc32']}, computed {crc})"
                )
        try:
            array = np.load(
                path, mmap_mode="r" if mmap else None, allow_pickle=False
            )
        except (OSError, ValueError) as error:
            raise CheckpointCorruptError(
                f"column {name!r} in {directory} is unreadable: {error}"
            ) from error
        if array.dtype.str != entry["dtype"] or list(array.shape) != list(
            entry["shape"]
        ):
            raise CheckpointCorruptError(
                f"column {name!r} in {directory} is {array.dtype.str}"
                f"{array.shape}; manifest recorded {entry['dtype']}"
                f"{tuple(entry['shape'])}"
            )
        columns[name] = array
    meta = payload.get("meta")
    return columns, dict(meta) if isinstance(meta, dict) else {}
