"""Exception hierarchy for the SDC-study reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class DataTypeError(ReproError):
    """A value cannot be encoded/decoded under the requested data type."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent or impossible state."""


class SchedulingError(ReproError):
    """A test schedule could not be constructed or executed."""


class DecommissionError(ReproError):
    """An invalid core/processor decommission operation was requested."""


class ResilienceError(ReproError):
    """Base class for campaign-resilience failures (checkpointing,
    supervision, degradation).  Subclasses distinguish *transient*
    conditions worth retrying from permanent corruption."""


class TransientWorkerError(ResilienceError):
    """A supervised worker task failed in a way that may succeed on
    retry (worker crash, injected fault, timeout).

    Carries the failing item's position and repr so a multi-hour sweep
    that ultimately gives up points straight at the offending input.
    """

    def __init__(
        self,
        message: str,
        *,
        item_index: int | None = None,
        item_repr: str | None = None,
        attempts: int = 1,
    ):
        super().__init__(message)
        self.item_index = item_index
        self.item_repr = item_repr
        self.attempts = attempts


class CheckpointError(ResilienceError):
    """A campaign checkpoint could not be written or read."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed its CRC/structure self-check (torn
    write, bit rot, truncation)."""


class CheckpointVersionError(CheckpointError):
    """A checkpoint was written by an incompatible format version."""


class ParityDegradedError(ResilienceError):
    """The vectorized engine's parity self-check tripped on a shard;
    the campaign must fall back to the scalar engine for that shard."""


class CampaignAbortedError(ResilienceError):
    """A resilient campaign exhausted its restart/retry budget."""


class ObservabilityError(ReproError):
    """A metrics/tracing operation was misused (bad metric name, kind
    mismatch, incompatible snapshot merge) or a telemetry artifact could
    not be written or parsed."""


class TraceCorruptError(ObservabilityError):
    """A JSONL trace record failed its per-line CRC-32 self-check or
    the file header is missing/incompatible."""


class TimeSeriesCorruptError(ObservabilityError):
    """A persisted time-series history failed its CRC/structure
    self-check (torn write, bit rot, incompatible version)."""


class ServiceError(ReproError):
    """Base class for ``repro serve`` daemon failures (journal,
    admission, scheduling, protocol)."""


class JournalError(ServiceError):
    """The service write-ahead journal could not be written or read."""


class JournalCorruptError(JournalError):
    """A journal line failed its CRC-32/structure self-check somewhere
    other than a (crash-tolerated) segment tail."""


class AdmissionError(ServiceError):
    """A job submission was rejected by admission control (queue full,
    oversized request, duplicate id, draining).

    ``status`` carries the HTTP status the API maps this to and
    ``retry_after_s`` the backpressure hint for 429 responses.
    """

    def __init__(
        self, message: str, *, status: int = 429,
        retry_after_s: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class CoherenceError(SimulationError):
    """The cache-coherence simulator detected a protocol violation that is
    not attributable to an injected defect (i.e. a simulator bug)."""


class TransactionError(SimulationError):
    """A transactional-memory operation was used outside a transaction or
    violated the simulator's usage contract."""
