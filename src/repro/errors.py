"""Exception hierarchy for the SDC-study reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class DataTypeError(ReproError):
    """A value cannot be encoded/decoded under the requested data type."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent or impossible state."""


class SchedulingError(ReproError):
    """A test schedule could not be constructed or executed."""


class DecommissionError(ReproError):
    """An invalid core/processor decommission operation was requested."""


class CoherenceError(SimulationError):
    """The cache-coherence simulator detected a protocol violation that is
    not attributable to an injected defect (i.e. a simulator bug)."""


class TransactionError(SimulationError):
    """A transactional-memory operation was used outside a transaction or
    violated the simulator's usage contract."""
