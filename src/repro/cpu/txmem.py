"""A transactional-memory simulator with injectable atomicity defects.

CNST1 and CNST2 in Table 3 "fail to guarantee the consistency in ...
transactional memory".  The observable corruption of a TM defect is a
*torn transaction*: a commit that should be all-or-nothing applies only
part of its write set, so invariants spanning multiple locations break
(the paper suspects "instructions responsible for managing the
transactional region" for CNST2, §4.1).

The simulator implements lazy-versioning, eager-conflict-detection
transactions over a shared store.  Healthy behaviour is strictly
serializable for the interleavings the test harness produces; all
anomalies come from the injected partial-commit hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from typing import TYPE_CHECKING

from ..errors import ConfigurationError, TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cpu.defects import Defect
    from ..faults.trigger import TriggerModel

__all__ = [
    "TornCommit",
    "Transaction",
    "TransactionalMemory",
    "tear_hook_from_defect",
]

#: Hook deciding whether a commit is torn.  Argument: the committing core.
TearHook = Callable[[int], bool]


@dataclass(frozen=True)
class TornCommit:
    """A detected TM violation: a commit applied only part of its writes."""

    core_id: int
    applied: Dict[int, int]
    dropped: Dict[int, int]


@dataclass
class Transaction:
    """An open transaction: buffered writes plus a read-version snapshot."""

    core_id: int
    read_set: Dict[int, int] = field(default_factory=dict)
    write_set: Dict[int, int] = field(default_factory=dict)
    active: bool = True


@dataclass
class TransactionalMemory:
    """Shared store with transactional access from multiple cores."""

    tear_hook: Optional[TearHook] = None
    store: Dict[int, int] = field(default_factory=dict)
    #: Version per address, bumped on every committed write; used for
    #: conflict detection.
    versions: Dict[int, int] = field(default_factory=dict)
    violations: List[TornCommit] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._open: Dict[int, Transaction] = {}

    # -- transaction lifecycle ------------------------------------------------

    def begin(self, core_id: int) -> Transaction:
        """Open a transaction on a core (one at a time per core)."""
        if core_id in self._open:
            raise TransactionError(f"core {core_id} already has an open transaction")
        txn = Transaction(core_id=core_id)
        self._open[core_id] = txn
        return txn

    def _require(self, core_id: int) -> Transaction:
        txn = self._open.get(core_id)
        if txn is None or not txn.active:
            raise TransactionError(f"core {core_id} has no open transaction")
        return txn

    def read(self, core_id: int, address: int, default: int = 0) -> int:
        """Transactional load; records the observed version."""
        txn = self._require(core_id)
        if address in txn.write_set:
            return txn.write_set[address]
        txn.read_set[address] = self.versions.get(address, 0)
        return self.store.get(address, default)

    def write(self, core_id: int, address: int, value: int) -> None:
        """Transactional store, buffered until commit."""
        txn = self._require(core_id)
        txn.write_set[address] = value

    def abort(self, core_id: int) -> None:
        """Discard a transaction's buffered writes."""
        txn = self._require(core_id)
        txn.active = False
        del self._open[core_id]

    def commit(self, core_id: int) -> bool:
        """Attempt to commit; returns False (clean abort) on conflict.

        On a healthy processor the commit is atomic.  With an injected
        tear, a strict non-empty subset of the write set is applied and
        the rest silently dropped — the transaction still *reports*
        success, which is what makes the corruption silent.
        """
        txn = self._require(core_id)
        for address, seen_version in txn.read_set.items():
            if self.versions.get(address, 0) != seen_version:
                self.abort(core_id)
                return False
        writes = dict(txn.write_set)
        torn = (
            self.tear_hook is not None
            and len(writes) >= 2
            and self.tear_hook(core_id)
        )
        if torn:
            addresses = sorted(writes)
            keep: Set[int] = set(addresses[: max(1, len(addresses) // 2)])
            applied = {a: v for a, v in writes.items() if a in keep}
            dropped = {a: v for a, v in writes.items() if a not in keep}
            self.violations.append(TornCommit(core_id, applied, dropped))
            writes = applied
        for address, value in writes.items():
            self.store[address] = value
            self.versions[address] = self.versions.get(address, 0) + 1
        txn.active = False
        del self._open[core_id]
        return True

    # -- non-transactional access (for checkers) -------------------------------

    def peek(self, address: int, default: int = 0) -> int:
        """Direct store read, outside any transaction."""
        return self.store.get(address, default)


def tear_hook_from_defect(
    defect: "Defect",
    trigger: "TriggerModel",
    setting_key: str,
    temperature_c: float,
    commits_per_s: float,
    rng: np.random.Generator,
    time_compression: float = 1.0,
) -> TearHook:
    """Build a commit-tear hook from a consistency defect's trigger law."""
    if not defect.is_consistency:
        raise ConfigurationError(
            f"defect {defect.defect_id} is not a consistency defect"
        )

    def hook(core_id: int) -> bool:
        probability = time_compression * trigger.per_execution_probability(
            defect, setting_key, temperature_c, commits_per_s, core_id
        )
        return probability > 0.0 and rng.random() < probability

    return hook
