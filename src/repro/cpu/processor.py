"""Processors, physical cores, and logical (SMT) cores.

The study's population covers nine micro-architectures (Table 2), all
multi-core, with SMT ("multiple hardware threads, also known as logical
cores, can share a single physical core", Observation 4).  A
:class:`Processor` is the unit of fleet accounting; defects attach to
processors and name the physical cores they affect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .defects import Defect
from .features import Feature

__all__ = ["MicroArchitecture", "LogicalCore", "PhysicalCore", "Processor"]


@dataclass(frozen=True)
class MicroArchitecture:
    """A CPU micro-architecture generation (M1-M9 in Table 2)."""

    name: str
    #: Release year relative to the earliest arch in the fleet; used only
    #: to show failure rate does not decrease with newer chips (Obs. 3).
    generation: int
    physical_cores: int
    smt: int = 2
    #: Thermal design parameters consumed by :mod:`repro.thermal`.
    tdp_watts: float = 150.0
    idle_temp_c: float = 45.0
    max_temp_c: float = 95.0

    def __post_init__(self) -> None:
        if self.physical_cores <= 0 or self.smt <= 0:
            raise ConfigurationError("core counts must be positive")

    @property
    def logical_cores(self) -> int:
        return self.physical_cores * self.smt


@dataclass(frozen=True)
class LogicalCore:
    """One hardware thread.  ``(pcore_id, thread_id)`` identifies it."""

    pcore_id: int
    thread_id: int

    @property
    def name(self) -> str:
        return f"pcore{self.pcore_id}t{self.thread_id}"


@dataclass(frozen=True)
class PhysicalCore:
    """One physical core with its SMT threads."""

    pcore_id: int
    smt: int = 2

    def logical(self) -> Tuple[LogicalCore, ...]:
        return tuple(
            LogicalCore(self.pcore_id, thread) for thread in range(self.smt)
        )

    @property
    def name(self) -> str:
        return f"pcore{self.pcore_id}"


@dataclass
class Processor:
    """A processor in the fleet, possibly carrying defects.

    Defect-free processors have an empty ``defects`` list; the executor
    then never corrupts results, which is also how "unaffected cores
    within a faulty processor" behave (Observation 4 / fine-grained
    decommission in §7.1).
    """

    processor_id: str
    arch: MicroArchitecture
    defects: Tuple[Defect, ...] = ()
    age_years: float = 0.0
    #: Physical cores masked out by fine-grained decommission (§7.1).
    masked_cores: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for defect in self.defects:
            bad = [c for c in defect.core_ids if not 0 <= c < self.arch.physical_cores]
            if bad:
                raise ConfigurationError(
                    f"defect {defect.defect_id} names nonexistent cores {bad}"
                )

    # -- topology ---------------------------------------------------------

    @property
    def physical_cores(self) -> List[PhysicalCore]:
        return [
            PhysicalCore(i, self.arch.smt)
            for i in range(self.arch.physical_cores)
        ]

    def available_cores(self) -> List[PhysicalCore]:
        """Physical cores not masked by decommission."""
        return [c for c in self.physical_cores if c.pcore_id not in self.masked_cores]

    def logical_cores(self) -> Iterator[LogicalCore]:
        for pcore in self.physical_cores:
            yield from pcore.logical()

    # -- defect queries -----------------------------------------------------

    @property
    def is_faulty(self) -> bool:
        return bool(self.defects)

    @property
    def age_days(self) -> float:
        return self.age_years * 365.0

    def active_defects(self, age_days: Optional[float] = None) -> List[Defect]:
        """Defects that have onset by the given age (default: current)."""
        if age_days is None:
            age_days = self.age_days
        return [d for d in self.defects if d.active_at(age_days)]

    def defective_cores(self) -> frozenset:
        """Physical-core ids touched by any defect."""
        cores: set = set()
        for defect in self.defects:
            cores.update(defect.core_ids)
        return frozenset(cores)

    def defective_features(self) -> frozenset:
        features: set = set()
        for defect in self.defects:
            features.update(defect.features)
        return frozenset(features)

    def defects_for_core(self, pcore_id: int) -> List[Defect]:
        return [d for d in self.defects if d.affects_core(pcore_id)]

    def has_feature_defect(self, feature: Feature) -> bool:
        return feature in self.defective_features()

    # -- decommission -------------------------------------------------------

    def with_masked_cores(self, core_ids: Sequence[int]) -> "Processor":
        """Return a copy with additional cores masked (never mutates)."""
        return Processor(
            processor_id=self.processor_id,
            arch=self.arch,
            defects=self.defects,
            age_years=self.age_years,
            masked_cores=frozenset(self.masked_cores) | frozenset(core_ids),
        )
