"""The study's micro-architectures and the 27 extensively-studied CPUs.

Table 2 lists nine micro-architectures M1-M9; Table 3 details ten of
the 27 faulty processors kept for in-depth analysis (the rest were
returned to the manufacturer before detailed characterization — here we
*generate* the remaining 17 with the same statistical properties, so
that §4-§5 analyses run over the full 27: 19 computation + 8
consistency, per §4.1).

All trigger parameters are calibrated against the paper:

* Figure 8's per-setting fits (MIX1/C: ~0.001-0.1 err/min over
  66-76 °C; MIX2/C: ~0.01-1 over 56-68 °C; FPU2/L: ~0.4-4 over
  48-56 °C) pin the named CPUs' tmin / frequency / slope values;
* Figure 9's anti-correlation between minimum triggering temperature
  and frequency-at-tmin (r ≈ −0.83) generates the 17 unnamed CPUs:
  ``log10 f0 = FIG9_INTERCEPT − FIG9_SLOPE · (tmin − 40 °C) + noise``;
* the MIX1/C 59 °C threshold quoted in §5's text falls out of MIX1's
  tmin plus the per-setting jitter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..faults.bitflip import (
    PatternBitflip,
    PositionBiasedBitflip,
    UniformBitflip,
)
from ..rng import substream
from .defects import Defect, DefectScope, TriggerProfile
from .features import DataType, Feature
from .isa import DEFAULT_ISA
from .processor import MicroArchitecture, Processor

__all__ = [
    "ARCHITECTURES",
    "PAPER_ARCH_FAILURE_RATES_PERMYRIAD",
    "FIG9_INTERCEPT",
    "FIG9_SLOPE",
    "FIG9_NOISE_SD",
    "named_catalog",
    "generated_catalog",
    "full_catalog",
    "catalog_processor",
    "STUDY_SIZE",
    "COMPUTATION_STUDY_COUNT",
    "CONSISTENCY_STUDY_COUNT",
]

#: The nine micro-architectures of Table 2.  Generation numbers order
#: them oldest→newest; Observation 3 notes the failure rate does *not*
#: decrease with newer generations.
ARCHITECTURES: Dict[str, MicroArchitecture] = {
    "M1": MicroArchitecture("M1", 1, physical_cores=8, tdp_watts=105.0),
    "M2": MicroArchitecture("M2", 2, physical_cores=16, tdp_watts=150.0),
    "M3": MicroArchitecture("M3", 3, physical_cores=24, tdp_watts=165.0),
    "M4": MicroArchitecture("M4", 4, physical_cores=10, tdp_watts=120.0),
    "M5": MicroArchitecture("M5", 5, physical_cores=12, tdp_watts=135.0),
    "M6": MicroArchitecture("M6", 6, physical_cores=20, tdp_watts=160.0),
    "M7": MicroArchitecture("M7", 7, physical_cores=16, tdp_watts=155.0),
    "M8": MicroArchitecture("M8", 8, physical_cores=28, tdp_watts=185.0),
    "M9": MicroArchitecture("M9", 9, physical_cores=32, tdp_watts=205.0),
}

#: Table 2's per-architecture failure rates (permyriad).  These seed the
#: fleet generator's incidence; the benchmark then *measures* rates back
#: out of the simulated pipeline.
PAPER_ARCH_FAILURE_RATES_PERMYRIAD: Dict[str, float] = {
    "M1": 4.619,
    "M2": 0.352,
    "M3": 2.649,
    "M4": 0.082,
    "M5": 0.759,
    "M6": 3.251,
    "M7": 1.599,
    "M8": 9.29,
    "M9": 4.646,
}

#: Figure 9 calibration: occurrence frequency (log10, err/min) at the
#: minimum triggering temperature vs that temperature.  The intercept is
#: the log-frequency at 40 °C; slope/noise give Pearson r ≈ −0.83 over
#: tmin ∈ [40, 75] °C.
FIG9_INTERCEPT = 1.6
FIG9_SLOPE = 0.13
FIG9_NOISE_SD = 0.45

STUDY_SIZE = 27
COMPUTATION_STUDY_COUNT = 19  # §4.1
CONSISTENCY_STUDY_COUNT = 8


def _patterns_for(
    defect_name: str,
    datatypes: Tuple[DataType, ...],
    per_dtype: int = 2,
) -> Dict[DataType, List[Tuple[int, float]]]:
    """Deterministic fixed bitflip patterns for a defect (Observation 8).

    Masks are sampled from the positional model so pattern positions
    share the mid-representation / fraction-biased statistics of
    non-pattern flips.
    """
    sampler = PositionBiasedBitflip()
    patterns: Dict[DataType, List[Tuple[int, float]]] = {}
    for dtype in datatypes:
        rng = substream(0, "patterns", defect_name, dtype.value)
        masks: List[int] = []
        # Narrow types cannot host many distinct masks (BIT has one).
        target = min(per_dtype, (1 << dtype.width) - 1)
        while len(masks) < target:
            mask = sampler.sample_mask(dtype, rng)
            if mask not in masks:
                masks.append(mask)
        # First pattern dominates, matching Figure 6's single-pattern-
        # heavy settings.
        weights = [1.0] + [0.35] * (len(masks) - 1)
        patterns[dtype] = list(zip(masks, weights))
    return patterns


def _computation_bitflip(
    defect_name: str,
    datatypes: Tuple[DataType, ...],
    pattern_probability: float,
) -> PatternBitflip:
    numeric = PositionBiasedBitflip()
    return PatternBitflip(
        patterns=_patterns_for(defect_name, datatypes),
        pattern_probability=pattern_probability,
        fallback=numeric,
    )


def _core_multipliers(n_cores: int, name: str) -> Dict[int, float]:
    """Per-core frequency multipliers spanning orders of magnitude.

    Observation 4: all-core defects hit every core "but at a different
    frequency ... up to several orders of magnitude under the same test
    setting, making some of the defective cores difficult to be
    detected".
    """
    rng = substream(0, "core-multipliers", name)
    multipliers = {0: 1.0}
    for core in range(1, n_cores):
        multipliers[core] = float(10.0 ** rng.uniform(-3.0, 0.0))
    return multipliers


def _defect(
    name: str,
    features: Tuple[Feature, ...],
    arch: MicroArchitecture,
    scope: DefectScope,
    instructions: Tuple[str, ...],
    tmin: float,
    log10_f0: float,
    slope: float,
    pattern_probability: float = 0.6,
    cores: Optional[Tuple[int, ...]] = None,
    multithread_only: bool = False,
) -> Defect:
    if scope is DefectScope.ALL_CORES:
        core_ids = tuple(range(arch.physical_cores))
        multipliers = _core_multipliers(arch.physical_cores, name)
    else:
        core_ids = cores if cores is not None else (0,)
        multipliers = {core: 1.0 for core in core_ids}
    datatypes = tuple(
        dict.fromkeys(DEFAULT_ISA[m].dtype for m in instructions)
    )
    is_consistency = all(
        f in (Feature.CACHE, Feature.TRX_MEM) for f in features
    )
    bitflip = (
        None
        if is_consistency
        else _computation_bitflip(name, datatypes, pattern_probability)
    )
    return Defect(
        defect_id=f"{name}-defect",
        features=features,
        scope=scope,
        core_ids=core_ids,
        instructions=() if is_consistency else instructions,
        datatypes=() if is_consistency else datatypes,
        trigger=TriggerProfile(
            tmin=tmin,
            log10_freq_at_tmin=log10_f0,
            temp_slope=slope,
        ),
        bitflip=bitflip,
        core_multipliers=multipliers,
        multithread_only=multithread_only or is_consistency,
    )


def named_catalog() -> Dict[str, Processor]:
    """The ten Table-3 processors, parameterized from the paper."""
    catalog: Dict[str, Processor] = {}

    def add(name: str, arch: str, age: float, defect: Defect) -> None:
        catalog[name] = Processor(
            processor_id=name,
            arch=ARCHITECTURES[arch],
            defects=(defect,),
            age_years=age,
        )

    # MIX1/MIX2: every core affected (16 pcores), mixed computation
    # features (FPU functionality fused with vector units, plus scalar
    # integer paths), moderate-to-low reproducibility, high tmin region
    # of Figure 8(a).
    add("MIX1", "M2", 1.75, _defect(
        "MIX1", (Feature.ALU, Feature.VECTOR, Feature.FPU),
        ARCHITECTURES["M2"], DefectScope.ALL_CORES,
        # Instruction set spans Table 3's impacted workloads: matrix
        # calculation (FMA/MUL), checksum (CRC32), string manipulation
        # (shuffle/pack), large integer arithmetic (ADC).
        ("ADD_I32", "MUL_U32", "VFMA_F32", "VMUL_F64", "POPCNT_B64",
         "PACK_B16", "CRC32_B32", "ADC_B64", "VSHUF_B32"),
        tmin=56.0, log10_f0=-2.6, slope=0.20, pattern_probability=0.45,
    ))
    add("MIX2", "M2", 0.92, _defect(
        "MIX2", (Feature.ALU, Feature.VECTOR, Feature.FPU),
        ARCHITECTURES["M2"], DefectScope.ALL_CORES,
        # Table 3: matrix calculation, checksum, bit operations, and
        # hashing (the §2.2 metadata-service case) are MIX2's victims.
        ("MUL_I16", "ADD_I32", "MUL_U32", "VADD_F32", "FMUL_F64",
         "CMP_BIT", "POPCNT_B64", "PACK_B16", "ROTL_B32", "SHAROUND_B64"),
        tmin=52.0, log10_f0=-1.6, slope=0.17, pattern_probability=0.55,
    ))
    # SIMD1: the single-core defect whose suspect is the fused
    # multiply-add vector instruction (§4.1); apparent (low tmin, high
    # frequency).
    add("SIMD1", "M2", 2.33, _defect(
        "SIMD1", (Feature.VECTOR, Feature.FPU),
        ARCHITECTURES["M2"], DefectScope.SINGLE_CORE,
        ("VFMA_F32",),
        tmin=42.0, log10_f0=1.3, slope=0.12, pattern_probability=0.85,
        cores=(3,),
    ))
    add("SIMD2", "M5", 0.50, _defect(
        "SIMD2", (Feature.VECTOR, Feature.FPU),
        ARCHITECTURES["M5"], DefectScope.SINGLE_CORE,
        ("VMUL_F64",),
        tmin=44.0, log10_f0=0.9, slope=0.10, pattern_probability=0.8,
        cores=(5,),
    ))
    # FPU1/FPU2: extended-precision arctangent suspect (§4.1), used by
    # "a library widely used in HPC applications".
    add("FPU1", "M5", 0.58, _defect(
        "FPU1", (Feature.FPU,),
        ARCHITECTURES["M5"], DefectScope.SINGLE_CORE,
        ("FATAN_F64X", "FSIN_F64"),
        tmin=45.0, log10_f0=0.7, slope=0.13, pattern_probability=0.8,
        cores=(2,),
    ))
    add("FPU2", "M5", 1.83, _defect(
        "FPU2", (Feature.FPU,),
        ARCHITECTURES["M5"], DefectScope.SINGLE_CORE,
        ("FATAN_F64X", "FLOG_F64X", "FSIN_F64"),
        tmin=46.0, log10_f0=-0.3, slope=0.125, pattern_probability=0.75,
        cores=(8,),  # Figure 8(c) plots FPU2, pcore8
    ))
    add("FPU3", "M3", 3.08, _defect(
        "FPU3", (Feature.FPU,),
        ARCHITECTURES["M3"], DefectScope.SINGLE_CORE,
        ("FMUL_F64", "FSQRT_F64"),
        tmin=50.0, log10_f0=0.3, slope=0.15, cores=(11,),
    ))
    add("FPU4", "M6", 1.62, _defect(
        "FPU4", (Feature.FPU,),
        ARCHITECTURES["M6"], DefectScope.SINGLE_CORE,
        ("FADD_F64",),
        tmin=62.0, log10_f0=-1.4, slope=0.18, cores=(7,),
    ))
    # CNST1 "fails to guarantee the consistency in both cache and
    # transactional memory"; CNST2 is TM-only across all 24 cores.
    add("CNST1", "M2", 0.92, _defect(
        "CNST1", (Feature.CACHE, Feature.TRX_MEM),
        ARCHITECTURES["M2"], DefectScope.SINGLE_CORE,
        (),
        tmin=47.0, log10_f0=0.6, slope=0.14, cores=(9,),
    ))
    add("CNST2", "M3", 1.08, _defect(
        "CNST2", (Feature.TRX_MEM,),
        ARCHITECTURES["M3"], DefectScope.ALL_CORES,
        (),
        tmin=55.0, log10_f0=-0.9, slope=0.16,
    ))
    return catalog


#: Instruction pools the generator draws computation defects from, per
#: primary feature.
_GENERATED_POOLS: Dict[Feature, Tuple[Tuple[str, ...], ...]] = {
    Feature.ALU: (
        ("ADD_I32", "SUB_I32"),
        ("MUL_I16",),
        ("MUL_U32", "SHL_U32"),
        ("ADC_B64", "XOR_B64"),
        ("CRC8_B8", "PACK_B16"),
    ),
    Feature.VECTOR: (
        ("VADD_I32",),
        ("VMULL_U32", "VSHUF_B32"),
        ("VXOR_B64", "VGF2P8_B64"),
        ("VADD_F32", "VMUL_F64"),
        ("VFMA_F64",),
    ),
    Feature.FPU: (
        ("FDIV_F32",),
        ("FEXP_F64",),
        ("F2XM1_F64X", "FLOG_F64X"),
        ("FSQRT_F64", "FMUL_F64"),
    ),
}


def generated_catalog(seed: int = 2021) -> Dict[str, Processor]:
    """The 17 unnamed study CPUs (11 computation + 6 consistency).

    Trigger parameters follow the Figure 9 line; features, scopes, and
    architectures are drawn to keep §4.1's aggregate proportions
    (roughly half single-core, computation:consistency = 19:8 overall
    once combined with the named ten).
    """
    rng = substream(seed, "generated-catalog")
    catalog: Dict[str, Processor] = {}
    arch_names = list(ARCHITECTURES)
    computation_features = [Feature.ALU, Feature.VECTOR, Feature.FPU]

    def trigger_params() -> Tuple[float, float, float]:
        tmin = float(rng.uniform(40.0, 72.0))
        log10_f0 = float(
            FIG9_INTERCEPT
            - FIG9_SLOPE * (tmin - 40.0)
            + rng.normal(0.0, FIG9_NOISE_SD)
        )
        slope = float(rng.uniform(0.08, 0.22))
        return tmin, log10_f0, slope

    for index in range(11):
        name = f"COMP{index + 1}"
        arch = ARCHITECTURES[arch_names[int(rng.integers(len(arch_names)))]]
        primary = computation_features[int(rng.integers(3))]
        pool = _GENERATED_POOLS[primary]
        instructions = pool[int(rng.integers(len(pool)))]
        features = tuple(
            dict.fromkeys(
                (primary,)
                + tuple(
                    f
                    for m in instructions
                    for f in DEFAULT_ISA[m].features
                    if f in computation_features
                )
            )
        )
        single = rng.random() < 0.55
        scope = DefectScope.SINGLE_CORE if single else DefectScope.ALL_CORES
        cores = (int(rng.integers(arch.physical_cores)),) if single else None
        tmin, log10_f0, slope = trigger_params()
        catalog[name] = Processor(
            processor_id=name,
            arch=arch,
            defects=(
                _defect(
                    name, features, arch, scope, instructions,
                    tmin=tmin, log10_f0=log10_f0, slope=slope,
                    pattern_probability=float(rng.uniform(0.35, 0.9)),
                    cores=cores,
                ),
            ),
            age_years=float(rng.uniform(0.3, 3.5)),
        )

    for index in range(6):
        name = f"CNSTG{index + 1}"
        arch = ARCHITECTURES[arch_names[int(rng.integers(len(arch_names)))]]
        kind = rng.random()
        if kind < 0.4:
            features: Tuple[Feature, ...] = (Feature.CACHE,)
        elif kind < 0.8:
            features = (Feature.TRX_MEM,)
        else:
            features = (Feature.CACHE, Feature.TRX_MEM)
        single = rng.random() < 0.5
        scope = DefectScope.SINGLE_CORE if single else DefectScope.ALL_CORES
        cores = (int(rng.integers(arch.physical_cores)),) if single else None
        tmin, log10_f0, slope = trigger_params()
        catalog[name] = Processor(
            processor_id=name,
            arch=arch,
            defects=(
                _defect(
                    name, features, arch, scope, (),
                    tmin=tmin, log10_f0=log10_f0, slope=slope, cores=cores,
                ),
            ),
            age_years=float(rng.uniform(0.3, 3.5)),
        )
    return catalog


def full_catalog(seed: int = 2021) -> Dict[str, Processor]:
    """All 27 extensively-studied faulty processors."""
    catalog = named_catalog()
    catalog.update(generated_catalog(seed))
    if len(catalog) != STUDY_SIZE:
        raise ConfigurationError(
            f"catalog has {len(catalog)} CPUs, expected {STUDY_SIZE}"
        )
    return catalog


def catalog_processor(name: str, seed: int = 2021) -> Processor:
    """Look up one study CPU by name (e.g. ``"MIX1"``)."""
    catalog = full_catalog(seed)
    try:
        return catalog[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown catalog processor {name!r}; known: {sorted(catalog)}"
        ) from None
