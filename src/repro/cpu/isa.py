"""A small instruction set tagged by feature and data type.

The vendor toolchain's testcases "simulate cloud workloads ... Most
testcases focus on individual processor features" (§2.3).  To let
testcases and workloads *execute* against a simulated CPU, we define an
ISA where every instruction carries:

* the micro-architectural features it exercises (a fused vector FMA
  exercises both ``VECTOR`` and ``FPU``, which is how a single defect in
  MIX1 corrupts both vector and complicated floating-point work, §4.1);
* the result data type, for bitflip analysis;
* a pure-Python semantic function producing the architecturally correct
  result;
* a relative heat weight, feeding the thermal model (complex operations
  such as transcendentals burn more power, §5's instruction-usage-stress
  discussion).

Integer semantics wrap modulo 2^width like real hardware, so results
always re-encode exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..errors import ConfigurationError
from .features import DataType, Feature

__all__ = ["Instruction", "ISA", "DEFAULT_ISA"]


def _wrap_signed(value: int, width: int) -> int:
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        value -= 1 << width
    return value


def _wrap_unsigned(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _clamp_float(value: float, dtype: DataType) -> float:
    """Round a float through its storage format (f32 stores round-trip)."""
    if dtype is DataType.FLOAT32:
        import struct

        return struct.unpack("<f", struct.pack("<f", value))[0]
    return value


@dataclass(frozen=True)
class Instruction:
    """One instruction of the simulated ISA."""

    mnemonic: str
    features: Tuple[Feature, ...]
    dtype: DataType
    arity: int
    semantics: Callable
    #: Relative dynamic power of one execution (thermal model input).
    heat: float = 1.0
    #: True for operations the paper calls "complex" (e.g. arctangent),
    #: which are disproportionately implicated in FPU defects.
    complex_op: bool = False

    def execute(self, *operands):
        """Compute the architecturally correct result."""
        if len(operands) != self.arity:
            raise ConfigurationError(
                f"{self.mnemonic} takes {self.arity} operands, got {len(operands)}"
            )
        return self.semantics(*operands)


@dataclass
class ISA:
    """A registry of instructions, queryable by mnemonic or feature."""

    instructions: Dict[str, Instruction] = field(default_factory=dict)

    def register(self, instruction: Instruction) -> Instruction:
        if instruction.mnemonic in self.instructions:
            raise ConfigurationError(
                f"duplicate instruction {instruction.mnemonic}"
            )
        self.instructions[instruction.mnemonic] = instruction
        return instruction

    def __getitem__(self, mnemonic: str) -> Instruction:
        try:
            return self.instructions[mnemonic]
        except KeyError:
            raise ConfigurationError(f"unknown instruction {mnemonic!r}") from None

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self.instructions

    def __len__(self) -> int:
        return len(self.instructions)

    def by_feature(self, feature: Feature) -> List[Instruction]:
        """All instructions exercising a feature, in registration order."""
        return [
            inst
            for inst in self.instructions.values()
            if feature in inst.features
        ]

    def mnemonics(self) -> List[str]:
        return list(self.instructions)


def _build_default_isa() -> ISA:
    isa = ISA()

    def reg(mnemonic, features, dtype, arity, fn, heat=1.0, complex_op=False):
        isa.register(
            Instruction(mnemonic, tuple(features), dtype, arity, fn, heat, complex_op)
        )

    # --- ALU: scalar integer / logic -------------------------------------
    reg("ADD_I32", [Feature.ALU], DataType.INT32, 2,
        lambda a, b: _wrap_signed(a + b, 32))
    reg("SUB_I32", [Feature.ALU], DataType.INT32, 2,
        lambda a, b: _wrap_signed(a - b, 32))
    reg("MUL_I16", [Feature.ALU], DataType.INT16, 2,
        lambda a, b: _wrap_signed(a * b, 16), heat=1.3)
    reg("MUL_U32", [Feature.ALU], DataType.UINT32, 2,
        lambda a, b: _wrap_unsigned(a * b, 32), heat=1.3)
    reg("AND_B64", [Feature.ALU], DataType.BIN64, 2, lambda a, b: a & b, heat=0.6)
    reg("OR_B64", [Feature.ALU], DataType.BIN64, 2, lambda a, b: a | b, heat=0.6)
    reg("XOR_B64", [Feature.ALU], DataType.BIN64, 2, lambda a, b: a ^ b, heat=0.6)
    reg("SHL_U32", [Feature.ALU], DataType.UINT32, 2,
        lambda a, s: _wrap_unsigned(a << (s & 31), 32), heat=0.7)
    reg("SHR_U32", [Feature.ALU], DataType.UINT32, 2,
        lambda a, s: (a & 0xFFFFFFFF) >> (s & 31), heat=0.7)
    reg("POPCNT_B64", [Feature.ALU], DataType.BYTE, 1,
        lambda a: bin(a & ((1 << 64) - 1)).count("1"), heat=0.8)
    reg("ROTL_B32", [Feature.ALU], DataType.BIN32, 2,
        lambda a, s: _wrap_unsigned((a << (s & 31)) | ((a & 0xFFFFFFFF) >> (32 - (s & 31 or 32))), 32),
        heat=0.7)
    reg("ADC_B64", [Feature.ALU], DataType.BIN64, 3,
        lambda a, b, c: _wrap_unsigned(a + b + (c & 1), 64), heat=1.1)
    reg("CMP_BIT", [Feature.ALU], DataType.BIT, 2, lambda a, b: int(a == b), heat=0.5)

    # --- VECTOR: packed operations (semantics modelled per lane-0) -------
    reg("VADD_F32", [Feature.VECTOR, Feature.FPU], DataType.FLOAT32, 2,
        lambda a, b: _clamp_float(a + b, DataType.FLOAT32), heat=1.6)
    reg("VMUL_F64", [Feature.VECTOR, Feature.FPU], DataType.FLOAT64, 2,
        lambda a, b: a * b, heat=1.8)
    # The SIMD1 suspect: "a vector instruction that performs
    # multiplication and addition operations simultaneously" (§4.1).
    reg("VFMA_F32", [Feature.VECTOR, Feature.FPU], DataType.FLOAT32, 3,
        lambda a, b, c: _clamp_float(a * b + c, DataType.FLOAT32),
        heat=2.2, complex_op=True)
    reg("VFMA_F64", [Feature.VECTOR, Feature.FPU], DataType.FLOAT64, 3,
        lambda a, b, c: a * b + c, heat=2.4, complex_op=True)
    reg("VADD_I32", [Feature.VECTOR], DataType.INT32, 2,
        lambda a, b: _wrap_signed(a + b, 32), heat=1.4)
    reg("VMULL_U32", [Feature.VECTOR], DataType.UINT32, 2,
        lambda a, b: _wrap_unsigned(a * b, 32), heat=1.5)
    reg("VXOR_B64", [Feature.VECTOR], DataType.BIN64, 2, lambda a, b: a ^ b, heat=1.0)
    reg("VSHUF_B32", [Feature.VECTOR], DataType.BIN32, 2,
        lambda a, sel: _shuffle_bytes(a, sel), heat=1.2)
    reg("VGF2P8_B64", [Feature.VECTOR], DataType.BIN64, 2,
        lambda a, b: _carryless_mul(a, b), heat=1.7)

    # --- FPU: scalar floating point ---------------------------------------
    reg("FADD_F64", [Feature.FPU], DataType.FLOAT64, 2, lambda a, b: a + b, heat=1.2)
    reg("FSUB_F64", [Feature.FPU], DataType.FLOAT64, 2, lambda a, b: a - b, heat=1.2)
    reg("FMUL_F64", [Feature.FPU], DataType.FLOAT64, 2, lambda a, b: a * b, heat=1.5)
    reg("FDIV_F32", [Feature.FPU], DataType.FLOAT32, 2,
        lambda a, b: _clamp_float(a / b if b else math.inf, DataType.FLOAT32),
        heat=2.0)
    reg("FSQRT_F64", [Feature.FPU], DataType.FLOAT64, 1,
        lambda a: math.sqrt(abs(a)), heat=2.0)
    # The FPU1/FPU2 suspect: extended-precision arctangent (§4.1).
    reg("FATAN_F64X", [Feature.FPU], DataType.FLOAT64X, 1,
        math.atan, heat=2.6, complex_op=True)
    reg("FSIN_F64", [Feature.FPU], DataType.FLOAT64, 1, math.sin,
        heat=2.4, complex_op=True)
    reg("FEXP_F64", [Feature.FPU], DataType.FLOAT64, 1,
        lambda a: math.exp(min(a, 700.0)), heat=2.4, complex_op=True)
    reg("FLOG_F64X", [Feature.FPU], DataType.FLOAT64X, 1,
        lambda a: math.log(abs(a)) if a else -math.inf, heat=2.5, complex_op=True)
    reg("F2XM1_F64X", [Feature.FPU], DataType.FLOAT64X, 1,
        lambda a: 2.0 ** max(min(a, 1.0), -1.0) - 1.0, heat=2.5, complex_op=True)

    # --- CRYPTO / checksum accelerators -----------------------------------
    reg("CRC32_B32", [Feature.CRYPTO, Feature.ALU], DataType.BIN32, 2,
        lambda crc, byte: _crc32_step(crc, byte), heat=1.1)
    reg("AESENC_B64", [Feature.CRYPTO], DataType.BIN64, 2,
        lambda a, k: _mix64(a, k), heat=1.6)
    reg("SHAROUND_B64", [Feature.CRYPTO], DataType.BIN64, 2,
        lambda a, b: _mix64(_mix64(a, b), 0x9E3779B97F4A7C15), heat=1.6)

    reg("CRC8_B8", [Feature.CRYPTO, Feature.ALU], DataType.BIN8, 2,
        lambda crc, byte: _crc8_step(crc, byte), heat=0.9)
    reg("PACK_B16", [Feature.ALU], DataType.BIN16, 2,
        lambda hi, lo: (((hi & 0xFF) << 8) | (lo & 0xFF)), heat=0.6)

    # --- Memory / branch / prefetch (coverage features) -------------------
    reg("MOV_B64", [Feature.MEMORY], DataType.BIN64, 1, lambda a: a, heat=0.4)
    reg("LOADSTREAM_B64", [Feature.MEMORY, Feature.PREFETCH], DataType.BIN64, 1,
        lambda a: a, heat=0.5)
    reg("BRTAKEN_I32", [Feature.BRANCH], DataType.INT32, 2,
        lambda a, b: 1 if a < b else 0, heat=0.5)
    reg("XCHG_B64", [Feature.INTERCONNECT, Feature.CACHE], DataType.BIN64, 1,
        lambda a: a, heat=0.9)

    return isa


def _shuffle_bytes(value: int, selector: int) -> int:
    """Byte shuffle of a 32-bit lane, PSHUFB-style."""
    value &= 0xFFFFFFFF
    out = 0
    for i in range(4):
        src = (selector >> (2 * i)) & 0x3
        byte = (value >> (8 * src)) & 0xFF
        out |= byte << (8 * i)
    return out


def _carryless_mul(a: int, b: int) -> int:
    """Carry-less (GF(2)) multiplication truncated to 64 bits."""
    a &= (1 << 64) - 1
    b &= (1 << 64) - 1
    out = 0
    while b:
        if b & 1:
            out ^= a
        a = (a << 1) & ((1 << 64) - 1)
        b >>= 1
    return out


_CRC32_POLY = 0xEDB88320


def _crc32_step(crc: int, byte: int) -> int:
    """One byte of reflected CRC-32 (the hardware CRC32 instruction)."""
    crc = (crc ^ (byte & 0xFF)) & 0xFFFFFFFF
    for _ in range(8):
        crc = (crc >> 1) ^ (_CRC32_POLY if crc & 1 else 0)
    return crc


_CRC8_POLY = 0x07


def _crc8_step(crc: int, byte: int) -> int:
    """One byte of CRC-8 (SMBus polynomial)."""
    crc = (crc ^ (byte & 0xFF)) & 0xFF
    for _ in range(8):
        crc = ((crc << 1) ^ _CRC8_POLY) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
    return crc


def _mix64(a: int, b: int) -> int:
    """A 64-bit mixing round (stand-in for AES/SHA round functions)."""
    x = (a ^ b) & ((1 << 64) - 1)
    x = (x * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & ((1 << 64) - 1)
    return (x ^ (x >> 31)) & ((1 << 64) - 1)


#: The ISA every simulated processor in the study implements.
DEFAULT_ISA = _build_default_isa()
