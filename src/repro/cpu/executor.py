"""Concrete instruction execution against a (possibly faulty) processor.

Workloads, examples, and the §2.2 case studies run real programs — a
sequence of ISA instructions — on a simulated core.  The executor
computes architecturally correct results and consults the fault
injector per execution, so a defective core corrupts exactly the
instructions its defect names, at a rate governed by the trigger law
(temperature and instruction-usage stress).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..faults.injector import CorruptionEvent, FaultInjector
from ..faults.trigger import TriggerModel
from ..rng import substream
from .isa import DEFAULT_ISA, ISA, Instruction
from .processor import Processor

__all__ = ["ProgramStep", "ExecutionResult", "Executor"]

#: One program step: ``(mnemonic, operands)``.
ProgramStep = Tuple[str, Tuple]


@dataclass
class ExecutionResult:
    """Outcome of running a program on one core."""

    values: List[object] = field(default_factory=list)
    events: List[CorruptionEvent] = field(default_factory=list)
    instruction_counts: dict = field(default_factory=dict)
    heat_units: float = 0.0

    @property
    def corrupted(self) -> bool:
        return bool(self.events)

    @property
    def final(self):
        """The last produced value (programs usually reduce to one)."""
        if not self.values:
            raise ConfigurationError("program produced no values")
        return self.values[-1]


class Executor:
    """Executes programs on a processor's cores with fault injection."""

    def __init__(
        self,
        processor: Processor,
        isa: ISA = DEFAULT_ISA,
        trigger_model: Optional[TriggerModel] = None,
        seed: int = 0,
        time_compression: float = 1.0,
    ):
        if time_compression <= 0:
            raise ConfigurationError("time_compression must be positive")
        self.processor = processor
        self.isa = isa
        self.injector = FaultInjector(processor, trigger_model)
        #: Each executed instruction stands for this many hardware
        #: executions (see FaultInjector.maybe_corrupt's ``scale``).
        self.time_compression = time_compression
        self._seed = seed
        self._rng_cache: dict = {}

    def _rng(self, setting_key: str, pcore_id: int) -> np.random.Generator:
        return substream(
            self._seed, "executor", self.processor.processor_id,
            setting_key, str(pcore_id),
        )

    def rng_for(self, setting_key: str, pcore_id: int) -> np.random.Generator:
        """A persistent per-(setting, core) stream.

        Unlike :meth:`_rng`, repeated calls return the *same* generator,
        so successive workload invocations continue the stream instead
        of deterministically replaying identical draws.
        """
        key = (setting_key, pcore_id)
        generator = self._rng_cache.get(key)
        if generator is None:
            generator = self._rng(setting_key, pcore_id)
            self._rng_cache[key] = generator
        return generator

    def run(
        self,
        program: Union[Sequence[ProgramStep], Iterable[ProgramStep]],
        pcore_id: int = 0,
        temperature_c: Union[float, Callable[[int], float]] = 45.0,
        setting_key: str = "adhoc",
        nominal_ips: float = 1.0e6,
        rng: Optional[np.random.Generator] = None,
    ) -> ExecutionResult:
        """Run a program on one physical core.

        ``temperature_c`` may be a constant or a callable of the step
        index (so a thermal simulation can drive it).  ``nominal_ips``
        is the simulated execution rate, from which per-instruction
        usage stress is derived: a program dominated by one instruction
        stresses it at nearly ``nominal_ips`` executions/second, while
        an instruction appearing rarely gets proportionally lower usage
        — reproducing §5's instruction-usage-stress effect.
        """
        if not 0 <= pcore_id < self.processor.arch.physical_cores:
            raise ConfigurationError(
                f"core {pcore_id} out of range for {self.processor.arch.name}"
            )
        steps: Sequence[ProgramStep] = (
            program if isinstance(program, Sequence) else list(program)
        )
        counts: dict = {}
        for mnemonic, _ in steps:
            counts[mnemonic] = counts.get(mnemonic, 0) + 1
        total = max(len(steps), 1)
        usage = {
            mnemonic: nominal_ips * count / total
            for mnemonic, count in counts.items()
        }
        if rng is None:
            rng = self.rng_for(setting_key, pcore_id)

        result = ExecutionResult(instruction_counts=counts)
        for index, (mnemonic, operands) in enumerate(steps):
            instruction = self.isa[mnemonic]
            correct = instruction.execute(*operands)
            temp = (
                temperature_c(index)
                if callable(temperature_c)
                else temperature_c
            )
            value, event = self.injector.maybe_corrupt(
                instruction,
                correct,
                pcore_id=pcore_id,
                temperature_c=temp,
                usage_per_s=usage[mnemonic],
                setting_key=setting_key,
                rng=rng,
                scale=self.time_compression,
            )
            result.values.append(value)
            result.heat_units += instruction.heat
            if event is not None:
                result.events.append(event)
        return result

    def run_reduction(
        self,
        mnemonic: str,
        operand_pairs: Iterable[Tuple],
        **kwargs,
    ) -> ExecutionResult:
        """Convenience: run one instruction over many operand tuples."""
        program = [(mnemonic, operands) for operands in operand_pairs]
        return self.run(program, **kwargs)

    def golden(self, program: Sequence[ProgramStep]) -> List[object]:
        """Architecturally correct results (no injection) for a program."""
        return [self.isa[m].execute(*ops) for m, ops in program]


def instruction_for(isa: ISA, mnemonic: str) -> Instruction:
    """Lookup helper kept for symmetry with the module's public API."""
    return isa[mnemonic]
