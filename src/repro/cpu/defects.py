"""The defect model: what is wrong with a faulty processor.

A :class:`Defect` captures everything the study measures about a fault:

* *where* it lives — which feature(s), which physical core(s)
  (Observation 4: about half the faulty CPUs have a single defective
  core, the other half have all cores affected, sometimes with
  per-core occurrence frequencies differing by orders of magnitude);
* *what* it corrupts — which instructions and result data types, and
  with which bitflip behaviour (Observations 6-8);
* *when* it triggers — minimum triggering temperature, exponential
  temperature sensitivity, and instruction-usage-stress sensitivity
  (Observations 9-10);
* *how detectable* it is — consistency defects need multi-threaded
  testcases (§4.1), and a small tail escapes the toolchain entirely
  (§2.3's false negatives).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Tuple

from ..errors import ConfigurationError
from .features import (
    CONSISTENCY_FEATURES,
    DataType,
    Feature,
    SDCType,
    sdc_type_of,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.bitflip import BitflipModel

__all__ = ["DefectScope", "TriggerProfile", "Defect"]


class DefectScope(enum.Enum):
    """Whether a defect affects one physical core or all of them."""

    SINGLE_CORE = "single_core"
    ALL_CORES = "all_cores"


@dataclass(frozen=True)
class TriggerProfile:
    """Triggering-condition parameters of a defect (Observation 10).

    The SDC occurrence frequency (errors/minute) of a *setting* —
    a (defect, testcase) pair — is::

        freq(T, usage) = 0                                if T < tmin
                       = 10 ** (log10_freq_at_tmin
                                + temp_slope * (T - tmin))
                         * (usage / reference_usage) ** stress_exponent
                         * core_multiplier                otherwise

    where ``tmin`` and ``log10_freq_at_tmin`` get a deterministic
    per-setting adjustment (see :mod:`repro.faults.trigger`), realizing
    both the exponential temperature law of Figure 8 and the
    freq-vs-min-trigger-temperature anti-correlation of Figure 9.
    """

    #: Minimum triggering temperature (°C) at the defect level.
    tmin: float
    #: log10 of errors/minute at ``tmin`` under reference usage.
    log10_freq_at_tmin: float
    #: d log10(freq) / dT above tmin; Figure 8 fits fall in 0.08-0.22.
    temp_slope: float
    #: Exponent of the usage-stress scaling; >1 makes low-usage
    #: testcases effectively error-free (§5's instruction-usage stress).
    stress_exponent: float = 1.6
    #: Spread (°C) of the per-setting tmin jitter.
    tmin_jitter: float = 6.0
    #: Spread (log10 units) of the per-setting frequency jitter.
    freq_jitter: float = 0.45

    def __post_init__(self) -> None:
        if self.temp_slope <= 0:
            raise ConfigurationError("temp_slope must be positive")
        if self.stress_exponent < 0:
            raise ConfigurationError("stress_exponent must be non-negative")
        if self.tmin_jitter < 0 or self.freq_jitter < 0:
            raise ConfigurationError("jitter spreads must be non-negative")


@dataclass(frozen=True)
class Defect:
    """A single hardware defect of a faulty processor."""

    defect_id: str
    features: Tuple[Feature, ...]
    scope: DefectScope
    #: Physical-core ids affected.  For ``ALL_CORES`` defects this lists
    #: every core of the processor.
    core_ids: Tuple[int, ...]
    #: Defective instruction mnemonics (empty for consistency defects:
    #: "a program often does not invoke a specific instruction for cache
    #: coherence", §4.1).
    instructions: Tuple[str, ...]
    #: Result data types that can be corrupted (Table 3's
    #: "impacted datatypes"; empty for consistency defects).
    datatypes: Tuple[DataType, ...]
    trigger: TriggerProfile
    #: Bitflip behaviour; ``None`` for consistency defects, whose
    #: corruptions are stale/torn data rather than flipped result bits.
    bitflip: Optional["BitflipModel"] = None
    #: Per-core occurrence-frequency multipliers.  MIX1/MIX2-style
    #: defects hit every core but at frequencies differing by orders of
    #: magnitude (Observation 4).  Missing cores default to 1.0.
    core_multipliers: Dict[int, float] = field(default_factory=dict)
    #: Consistency defects can only be detected by multi-threaded
    #: testcases (§4.1).
    multithread_only: bool = False
    #: True for the tail of defects that escape the toolchain entirely
    #: ("We did find SDCs that cannot be detected by this toolchain",
    #: §2.3); the fleet pipeline never detects these.
    escapes_toolchain: bool = False
    #: Days after manufacturing at which the defect becomes active.
    #: 0 = present at birth; >0 models burn-in / wear-related onset,
    #: which is what makes re-installation and regular testing find
    #: faults that factory testing missed (Table 1).
    onset_days: float = 0.0

    def __post_init__(self) -> None:
        if not self.features:
            raise ConfigurationError("a defect must name at least one feature")
        types = {sdc_type_of(f) for f in self.features}
        if len(types) != 1:
            # Observation 5: "if one processor has multiple defective
            # features, they always belong to one type."
            raise ConfigurationError(
                "a defect cannot mix computation and consistency features"
            )
        if not self.core_ids:
            raise ConfigurationError("a defect must affect at least one core")
        if self.sdc_type is SDCType.COMPUTATION:
            if not self.instructions or not self.datatypes:
                raise ConfigurationError(
                    "computation defects need instructions and datatypes"
                )
            if self.bitflip is None:
                raise ConfigurationError("computation defects need a bitflip model")
        else:
            if self.instructions:
                raise ConfigurationError(
                    "consistency defects are not tied to instructions"
                )

    @property
    def sdc_type(self) -> SDCType:
        return sdc_type_of(self.features[0])

    @property
    def is_consistency(self) -> bool:
        return bool(set(self.features) & CONSISTENCY_FEATURES)

    @property
    def affected_cores(self) -> FrozenSet[int]:
        return frozenset(self.core_ids)

    def affects_core(self, pcore_id: int) -> bool:
        return pcore_id in self.affected_cores

    def affects_instruction(self, mnemonic: str) -> bool:
        return mnemonic in self.instructions

    def core_multiplier(self, pcore_id: int) -> float:
        """Relative occurrence-frequency multiplier for a core."""
        if not self.affects_core(pcore_id):
            return 0.0
        return self.core_multipliers.get(pcore_id, 1.0)

    def active_at(self, age_days: float) -> bool:
        """Whether the defect has onset by a given processor age."""
        return age_days >= self.onset_days
