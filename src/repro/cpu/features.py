"""Processor features and operation data types.

The paper identifies five *vulnerable features* (Observation 5):
arithmetic-logic computation, vector operations, floating-point
calculation, cache coherency, and transactional memory.  Testcases,
defects, and workloads are all tagged with the features they exercise,
and SDCs are classified as *computation* or *consistency* type by the
feature they arise from (§4.1).

The affected-operation data types of Table 3 / Figure 3 are modelled by
:class:`DataType`, including the 80-bit extended-precision format the
paper calls ``float64x``.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Mapping, Tuple

__all__ = [
    "Feature",
    "SDCType",
    "DataType",
    "VULNERABLE_FEATURES",
    "COMPUTATION_FEATURES",
    "CONSISTENCY_FEATURES",
    "FEATURE_DATATYPES",
    "sdc_type_of",
]


class Feature(enum.Enum):
    """A micro-architectural feature a testcase / defect / workload targets."""

    ALU = "alu"
    VECTOR = "vector"
    FPU = "fpu"
    CACHE = "cache"
    TRX_MEM = "trx_mem"
    # Features exercised by the toolchain but never observed defective in
    # the study; they exist so the 633-testcase library covers more than
    # the vulnerable set (Observation 11 depends on most testcases
    # finding nothing).
    BRANCH = "branch"
    MEMORY = "memory"
    CRYPTO = "crypto"
    INTERCONNECT = "interconnect"
    PREFETCH = "prefetch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The five features Observation 5 names as vulnerable.
VULNERABLE_FEATURES: FrozenSet[Feature] = frozenset(
    {Feature.ALU, Feature.VECTOR, Feature.FPU, Feature.CACHE, Feature.TRX_MEM}
)

#: Defective arithmetic => "computation" SDCs (§4.1).
COMPUTATION_FEATURES: FrozenSet[Feature] = frozenset(
    {Feature.ALU, Feature.VECTOR, Feature.FPU}
)

#: Defective consistency guarantees => "consistency" SDCs (§4.1).
CONSISTENCY_FEATURES: FrozenSet[Feature] = frozenset(
    {Feature.CACHE, Feature.TRX_MEM}
)


class SDCType(enum.Enum):
    """The paper's two SDC categories (§4.1)."""

    COMPUTATION = "computation"
    CONSISTENCY = "consistency"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def sdc_type_of(feature: Feature) -> SDCType:
    """Classify a feature into the paper's computation/consistency split.

    Raises :class:`ValueError` for features that were never observed
    defective (they have no SDC classification in the paper).
    """
    if feature in COMPUTATION_FEATURES:
        return SDCType.COMPUTATION
    if feature in CONSISTENCY_FEATURES:
        return SDCType.CONSISTENCY
    raise ValueError(f"feature {feature} has no SDC classification")


class DataType(enum.Enum):
    """An operation data type, as listed in Table 3 and Figure 3.

    ``BIN*`` types are *non-numerical* raw-bit payloads (checksums, hash
    digests, packed strings); Figure 5 shows their bitflips are roughly
    uniform across positions, unlike the numeric types of Figure 4.
    """

    INT16 = "i16"
    INT32 = "i32"
    UINT32 = "ui32"
    FLOAT32 = "f32"
    FLOAT64 = "f64"
    FLOAT64X = "f64x"  # 80-bit x87 extended precision
    BIT = "bit"
    BYTE = "byte"
    BIN8 = "bin8"
    BIN16 = "bin16"
    BIN32 = "bin32"
    BIN64 = "bin64"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def width(self) -> int:
        """Bit width of the representation."""
        return _WIDTHS[self]

    @property
    def is_float(self) -> bool:
        return self in (DataType.FLOAT32, DataType.FLOAT64, DataType.FLOAT64X)

    @property
    def is_integer(self) -> bool:
        return self in (DataType.INT16, DataType.INT32, DataType.UINT32)

    @property
    def is_signed(self) -> bool:
        return self in (DataType.INT16, DataType.INT32) or self.is_float

    @property
    def is_numeric(self) -> bool:
        return self.is_float or self.is_integer

    @property
    def float_fields(self) -> Tuple[int, int]:
        """(exponent_bits, fraction_bits) for float types.

        For ``FLOAT64X`` the 64-bit significand includes the explicit
        integer bit at position 63; the *fraction* is the low 63 bits.
        """
        if not self.is_float:
            raise ValueError(f"{self} is not a floating-point type")
        return _FLOAT_FIELDS[self]


_WIDTHS: Mapping[DataType, int] = {
    DataType.INT16: 16,
    DataType.INT32: 32,
    DataType.UINT32: 32,
    DataType.FLOAT32: 32,
    DataType.FLOAT64: 64,
    DataType.FLOAT64X: 80,
    DataType.BIT: 1,
    DataType.BYTE: 8,
    DataType.BIN8: 8,
    DataType.BIN16: 16,
    DataType.BIN32: 32,
    DataType.BIN64: 64,
}

_FLOAT_FIELDS: Mapping[DataType, Tuple[int, int]] = {
    DataType.FLOAT32: (8, 23),
    DataType.FLOAT64: (11, 52),
    DataType.FLOAT64X: (15, 63),
}

#: Which data types each computation feature operates on.  Used by the
#: testcase library and by the defect generator: a defect in a feature
#: can only corrupt the data types that feature touches (Table 3).
FEATURE_DATATYPES: Mapping[Feature, Tuple[DataType, ...]] = {
    Feature.ALU: (
        DataType.INT16,
        DataType.INT32,
        DataType.UINT32,
        DataType.BIT,
        DataType.BYTE,
        DataType.BIN16,
        DataType.BIN32,
        DataType.BIN64,
    ),
    Feature.VECTOR: (
        DataType.INT32,
        DataType.UINT32,
        DataType.FLOAT32,
        DataType.FLOAT64,
        DataType.BIN32,
        DataType.BIN64,
    ),
    Feature.FPU: (DataType.FLOAT32, DataType.FLOAT64, DataType.FLOAT64X),
    Feature.CRYPTO: (DataType.BIN32, DataType.BIN64, DataType.BYTE),
    Feature.MEMORY: (DataType.BIN64,),
    Feature.BRANCH: (DataType.INT32,),
    Feature.CACHE: (),
    Feature.TRX_MEM: (),
    Feature.INTERCONNECT: (),
    Feature.PREFETCH: (),
}
