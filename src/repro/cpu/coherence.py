"""A MESI cache-coherence simulator with injectable protocol defects.

Consistency SDCs "can only be detected with multi-threaded tests"
(§4.1) and have no deterministic bitflip pattern; the corruption is a
*stale or torn value* observed by another core.  The paper's second
§2.2 case study is exactly this: a client thread packs data plus
checksum into a shared buffer, and "due to defective cache coherence,
the daemon thread sometimes got inconsistent data".

This module simulates per-core private caches kept coherent with the
MESI protocol over a snooping bus.  A defective processor drops
invalidation messages to specific cores with a probability supplied by
a hook (derived from the defect's trigger law), leaving stale lines in
Shared state — subsequent reads on the victim core return old data,
which is precisely the observable corruption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from typing import TYPE_CHECKING

from ..errors import CoherenceError, ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cpu.defects import Defect
    from ..faults.trigger import TriggerModel

__all__ = [
    "LineState",
    "StaleRead",
    "CoherentSystem",
    "drop_hook_from_defect",
]

#: Hook deciding whether a protocol message is lost.  Arguments are the
#: event kind (currently only ``"invalidate"``) and the *victim* core.
DropHook = Callable[[str, int], bool]


class LineState(enum.Enum):
    """MESI cache-line states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class _CacheLine:
    state: LineState
    value: int


@dataclass(frozen=True)
class StaleRead:
    """A detected coherence violation: a read returned outdated data."""

    core_id: int
    address: int
    stale_value: int
    current_value: int


@dataclass
class CoherentSystem:
    """N cores with private caches over a shared memory, MESI-coherent.

    The simulator is intentionally sequentially-consistent when healthy:
    with no drop hook, every read returns the most recently written
    value, which the unit tests assert exhaustively.  All corruption
    comes from injected message loss.
    """

    n_cores: int
    drop_hook: Optional[DropHook] = None
    memory: Dict[int, int] = field(default_factory=dict)
    #: Reads that returned stale data (appended as they happen).
    violations: List[StaleRead] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigurationError("n_cores must be positive")
        self._caches: List[Dict[int, _CacheLine]] = [
            {} for _ in range(self.n_cores)
        ]

    # -- internal protocol actions ------------------------------------------

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.n_cores:
            raise CoherenceError(f"core {core_id} out of range")

    def _writeback(self, core_id: int, address: int) -> None:
        line = self._caches[core_id].get(address)
        if line is not None and line.state is LineState.MODIFIED:
            self.memory[address] = line.value
            line.state = LineState.SHARED

    def _invalidate_others(self, writer: int, address: int) -> None:
        for core_id in range(self.n_cores):
            if core_id == writer:
                continue
            line = self._caches[core_id].get(address)
            if line is None or line.state is LineState.INVALID:
                continue
            if self.drop_hook is not None and self.drop_hook("invalidate", core_id):
                # The defect: the invalidation never reaches this core.
                # Its line silently stays valid with the old value.
                continue
            if line.state is LineState.MODIFIED:
                self.memory[address] = line.value
            line.state = LineState.INVALID

    # -- public memory operations --------------------------------------------

    def write(self, core_id: int, address: int, value: int) -> None:
        """Store ``value`` at ``address`` from ``core_id``."""
        self._check_core(core_id)
        self._invalidate_others(core_id, address)
        self._caches[core_id][address] = _CacheLine(LineState.MODIFIED, value)
        # Track the architecturally current value for violation checks.
        self.memory[address] = value

    def read(self, core_id: int, address: int, default: int = 0) -> int:
        """Load from ``address`` on ``core_id``; records stale reads."""
        self._check_core(core_id)
        line = self._caches[core_id].get(address)
        current = self.memory.get(address, default)
        if line is not None and line.state is not LineState.INVALID:
            if line.value != current:
                self.violations.append(
                    StaleRead(core_id, address, line.value, current)
                )
            return line.value
        # Miss: fetch from memory; the line is Shared if cached elsewhere.
        shared = any(
            other.get(address) is not None
            and other[address].state is not LineState.INVALID
            for i, other in enumerate(self._caches)
            if i != core_id
        )
        state = LineState.SHARED if shared else LineState.EXCLUSIVE
        self._caches[core_id][address] = _CacheLine(state, current)
        return current

    def flush(self, core_id: int) -> None:
        """Write back and drop every line a core holds."""
        self._check_core(core_id)
        for address in list(self._caches[core_id]):
            self._writeback(core_id, address)
        self._caches[core_id].clear()

    def line_state(self, core_id: int, address: int) -> LineState:
        line = self._caches[core_id].get(address)
        return LineState.INVALID if line is None else line.state


def drop_hook_from_defect(
    defect: "Defect",
    trigger: "TriggerModel",
    setting_key: str,
    temperature_c: float,
    ops_per_s: float,
    rng: np.random.Generator,
    time_compression: float = 1.0,
) -> DropHook:
    """Build a message-drop hook from a consistency defect.

    The per-message drop probability follows the same trigger law as
    computation defects: zero below the setting's minimum triggering
    temperature, exponential above it, and scaled per victim core.
    """
    if not defect.is_consistency:
        raise ConfigurationError(
            f"defect {defect.defect_id} is not a consistency defect"
        )

    def hook(event: str, core_id: int) -> bool:
        if event != "invalidate":
            return False
        probability = time_compression * trigger.per_execution_probability(
            defect, setting_key, temperature_c, ops_per_s, core_id
        )
        return probability > 0.0 and rng.random() < probability

    return hook
