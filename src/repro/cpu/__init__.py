"""CPU substrate: features, data types, ISA, defects, processors.

Public surface of the simulated-processor layer.  See
:mod:`repro.cpu.catalog` for the study's micro-architectures and the 27
extensively-studied faulty CPUs.
"""

from .features import (
    CONSISTENCY_FEATURES,
    COMPUTATION_FEATURES,
    DataType,
    Feature,
    FEATURE_DATATYPES,
    SDCType,
    VULNERABLE_FEATURES,
    sdc_type_of,
)
from .datatypes import (
    decode,
    encode,
    flip,
    flipped_positions,
    popcount,
    relative_precision_loss,
    xor_mask,
)
from .defects import Defect, DefectScope, TriggerProfile
from .isa import DEFAULT_ISA, ISA, Instruction
from .processor import LogicalCore, MicroArchitecture, PhysicalCore, Processor
from .executor import ExecutionResult, Executor
from .coherence import CoherentSystem, LineState, StaleRead, drop_hook_from_defect
from .txmem import TornCommit, Transaction, TransactionalMemory, tear_hook_from_defect
from .catalog import (
    ARCHITECTURES,
    PAPER_ARCH_FAILURE_RATES_PERMYRIAD,
    catalog_processor,
    full_catalog,
    generated_catalog,
    named_catalog,
)

__all__ = [
    "CONSISTENCY_FEATURES",
    "COMPUTATION_FEATURES",
    "DataType",
    "Feature",
    "FEATURE_DATATYPES",
    "SDCType",
    "VULNERABLE_FEATURES",
    "sdc_type_of",
    "decode",
    "encode",
    "flip",
    "flipped_positions",
    "popcount",
    "relative_precision_loss",
    "xor_mask",
    "Defect",
    "DefectScope",
    "TriggerProfile",
    "DEFAULT_ISA",
    "ISA",
    "Instruction",
    "LogicalCore",
    "MicroArchitecture",
    "PhysicalCore",
    "Processor",
    "ExecutionResult",
    "Executor",
    "CoherentSystem",
    "LineState",
    "StaleRead",
    "drop_hook_from_defect",
    "TornCommit",
    "Transaction",
    "TransactionalMemory",
    "tear_hook_from_defect",
    "ARCHITECTURES",
    "PAPER_ARCH_FAILURE_RATES_PERMYRIAD",
    "catalog_processor",
    "full_catalog",
    "generated_catalog",
    "named_catalog",
]
