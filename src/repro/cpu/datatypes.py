"""Bit-level codecs for every operation data type in the study.

The bitflip analysis of §4.2 works on *representations*: an SDC record
stores the expected and actual values, and the analysis XORs their bit
patterns to find which positions flipped (Figures 4-7).  This module
provides exact, reversible encode/decode between Python values and
fixed-width bit patterns (held as non-negative Python ints), including
the 80-bit x87 extended-precision format (``float64x``) which has no
native Python/NumPy portable representation.

Precision loss (Figure 4(e)-(h)) is the relative error
``|actual - expected| / |expected|`` computed on decoded values.
"""

from __future__ import annotations

import math
import struct
from typing import Iterable, List, Optional

from ..errors import DataTypeError
from .features import DataType

__all__ = [
    "encode",
    "decode",
    "flip",
    "xor_mask",
    "flipped_positions",
    "popcount",
    "relative_precision_loss",
    "random_value",
    "random_values",
    "FLOAT64X_BIAS",
]

#: Exponent bias of the 80-bit extended format (15-bit exponent).
FLOAT64X_BIAS = 16383

_F32_STRUCT = struct.Struct("<f")
_F64_STRUCT = struct.Struct("<d")


def _check_width(bits: int, dtype: DataType) -> int:
    if bits < 0 or bits >> dtype.width:
        raise DataTypeError(
            f"bit pattern {bits:#x} does not fit in {dtype.width}-bit {dtype}"
        )
    return bits


def encode(value, dtype: DataType) -> int:
    """Encode ``value`` into its ``dtype`` bit pattern (a Python int).

    Integers out of range raise :class:`DataTypeError` rather than
    silently wrapping: a study tool should never fabricate values.
    """
    if dtype is DataType.INT16 or dtype is DataType.INT32:
        width = dtype.width
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        if not isinstance(value, int) or isinstance(value, bool):
            raise DataTypeError(f"{dtype} requires an int, got {value!r}")
        if not lo <= value <= hi:
            raise DataTypeError(f"{value} out of range for {dtype}")
        return value & ((1 << width) - 1)
    if dtype.is_float:
        return _encode_float(float(value), dtype)
    # Unsigned integers and raw binary payloads share a representation.
    width = dtype.width
    if not isinstance(value, int) or isinstance(value, bool):
        raise DataTypeError(f"{dtype} requires an int, got {value!r}")
    if not 0 <= value < (1 << width):
        raise DataTypeError(f"{value} out of range for {dtype}")
    return value


def decode(bits: int, dtype: DataType):
    """Decode a ``dtype`` bit pattern back into a Python value."""
    _check_width(bits, dtype)
    if dtype is DataType.INT16 or dtype is DataType.INT32:
        width = dtype.width
        if bits & (1 << (width - 1)):
            return bits - (1 << width)
        return bits
    if dtype.is_float:
        return _decode_float(bits, dtype)
    return bits


def _encode_float(value: float, dtype: DataType) -> int:
    if dtype is DataType.FLOAT32:
        return int.from_bytes(_F32_STRUCT.pack(value), "little")
    if dtype is DataType.FLOAT64:
        return int.from_bytes(_F64_STRUCT.pack(value), "little")
    return _encode_float80(value)


def _decode_float(bits: int, dtype: DataType) -> float:
    if dtype is DataType.FLOAT32:
        return _F32_STRUCT.unpack(bits.to_bytes(4, "little"))[0]
    if dtype is DataType.FLOAT64:
        return _F64_STRUCT.unpack(bits.to_bytes(8, "little"))[0]
    return _decode_float80(bits)


def _encode_float80(value: float) -> int:
    """Encode a Python float into the 80-bit x87 extended format.

    Layout (bit 79 is the MSB): sign(1) | exponent(15, bias 16383) |
    significand(64, explicit integer bit at position 63).  Every IEEE-754
    double converts exactly, which is all the study needs (workload
    values originate as doubles).
    """
    sign = 1 if math.copysign(1.0, value) < 0 else 0
    if math.isnan(value):
        return (sign << 79) | (0x7FFF << 64) | (1 << 63) | (1 << 62)
    if math.isinf(value):
        return (sign << 79) | (0x7FFF << 64) | (1 << 63)
    if value == 0.0:
        return sign << 79
    mantissa, exponent = math.frexp(abs(value))  # value = mantissa * 2**exponent
    # frexp gives mantissa in [0.5, 1); normalize to [1, 2).
    mantissa *= 2.0
    exponent -= 1
    biased = exponent + FLOAT64X_BIAS
    if biased <= 0:  # pragma: no cover - doubles cannot reach float80 subnormals
        raise DataTypeError(f"{value} underflows float64x")
    significand = round(mantissa * (1 << 63))
    if significand == 1 << 64:  # rounding carried into a new bit
        significand >>= 1
        biased += 1
    return (sign << 79) | (biased << 64) | significand


def _decode_float80(bits: int) -> float:
    sign = -1.0 if bits >> 79 else 1.0
    biased = (bits >> 64) & 0x7FFF
    significand = bits & ((1 << 64) - 1)
    if biased == 0x7FFF:
        if significand & ((1 << 63) - 1):
            return math.nan
        return sign * math.inf
    if biased == 0 and significand == 0:
        return sign * 0.0
    exponent = biased - FLOAT64X_BIAS
    # ldexp handles the deep-negative exponents of tiny doubles, where
    # a naive ``2.0 ** n`` would underflow to zero prematurely.  The
    # float() conversion rounds 80-bit-only precision to the nearest
    # double, which is the best a Python float can represent.
    value = math.ldexp(float(significand), exponent - 63)
    return sign * value


def flip(bits: int, mask: int, dtype: DataType) -> int:
    """Apply a bitflip mask to a pattern, validating widths."""
    _check_width(bits, dtype)
    _check_width(mask, dtype)
    return bits ^ mask


def xor_mask(expected_bits: int, actual_bits: int) -> int:
    """The mask of differing bits between two patterns (§4.2's masks)."""
    return expected_bits ^ actual_bits


def flipped_positions(mask: int) -> List[int]:
    """Bit indices set in a mask, LSB = index 0 (the paper's convention).

    Walks set bits only (isolate the lowest set bit, record its index,
    clear it): SDC masks are sparse — mostly 1-2 flips in an up-to-80-bit
    word — so this beats the shift-every-position scan the analysis hot
    loops used to pay.
    """
    positions = []
    while mask:
        low = mask & -mask
        positions.append(low.bit_length() - 1)
        mask ^= low
    return positions


if hasattr(int, "bit_count"):  # Python >= 3.10

    def popcount(mask: int) -> int:
        """Number of set bits (number of flipped bits in an SDC)."""
        return mask.bit_count()

else:  # pragma: no cover - Python 3.9 fallback

    def popcount(mask: int) -> int:
        """Number of set bits (number of flipped bits in an SDC)."""
        return bin(mask).count("1")


def relative_precision_loss(expected, actual, dtype: DataType) -> Optional[float]:
    """Relative precision loss between expected and actual values.

    Returns ``None`` for non-numeric types (Figure 4 only covers numeric
    data) and ``math.inf`` when the expected value is zero but the
    actual is not, or when the corrupted float decodes to inf/nan.
    """
    if not dtype.is_numeric:
        return None
    expected_value = float(decode(encode(expected, dtype), dtype)) if not isinstance(
        expected, float
    ) else float(expected)
    actual_value = float(actual)
    if math.isnan(actual_value) or math.isinf(actual_value):
        return math.inf
    if expected_value == 0.0:
        return 0.0 if actual_value == 0.0 else math.inf
    return abs(actual_value - expected_value) / abs(expected_value)


def random_value(rng, dtype: DataType):
    """Draw a representative operand value for a data type.

    Floats avoid exact zero so relative precision loss is always
    well-defined.  Integer magnitudes are log-uniform: production
    integers (counters, sizes, ids) are usually small relative to their
    storage width, which is why mid-representation bitflips cause the
    large integer precision losses of Figure 4(e).
    """
    if dtype.is_float:
        magnitude = float(rng.uniform(0.5, 1000.0))
        sign = -1.0 if rng.random() < 0.5 else 1.0
        return sign * magnitude
    width = dtype.width
    if dtype.is_integer:
        max_exponent = math.log10((1 << (width - 1 if dtype.is_signed else width)) - 1)
        magnitude = int(10.0 ** rng.uniform(0.0, max_exponent))
        if dtype.is_signed and rng.random() < 0.5:
            return -magnitude
        return magnitude
    return int(rng.integers(0, 1 << min(width, 63)))


def random_values(rng, dtype: DataType, count: int) -> List:
    """Draw ``count`` operand values with batched generator calls.

    Semantically ``[random_value(rng, dtype) for _ in range(count)]``,
    but the uniform/sign draws are pulled from the generator in one
    vectorized call instead of ``2 * count`` round trips, which is the
    dominant cost when materializing large error bursts.  The values are
    bit-identical to the scalar loop: ``Generator.uniform(a, b)``
    computes ``a + (b - a) * next_double``, so re-deriving it from
    ``Generator.random`` output reproduces the same doubles.
    """
    if count <= 0:
        return []
    if dtype.is_float:
        draws = rng.random(2 * count)
        magnitudes = 0.5 + (1000.0 - 0.5) * draws[0::2]
        return [
            float(-m) if s < 0.5 else float(m)
            for m, s in zip(magnitudes, draws[1::2])
        ]
    width = dtype.width
    if dtype.is_integer:
        max_exponent = math.log10(
            (1 << (width - 1 if dtype.is_signed else width)) - 1
        )
        if dtype.is_signed:
            draws = rng.random(2 * count)
            # 10.0 ** x stays a scalar op: Python's pow and NumPy's SIMD
            # np.power differ in the last ulp, and int() truncation
            # would amplify that into different operands.
            return [
                -int(10.0 ** (max_exponent * u)) if s < 0.5
                else int(10.0 ** (max_exponent * u))
                for u, s in zip(draws[0::2], draws[1::2])
            ]
        draws = rng.random(count)
        return [int(10.0 ** (max_exponent * u)) for u in draws]
    return [int(v) for v in rng.integers(0, 1 << min(width, 63), size=count)]


def values_to_masks(
    pairs: Iterable[tuple], dtype: DataType
) -> List[int]:
    """Convenience: XOR masks for (expected, actual) value pairs."""
    return [
        xor_mask(encode(exp, dtype), encode(act, dtype)) for exp, act in pairs
    ]
