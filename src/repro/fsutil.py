"""Crash-durability primitives shared by every on-disk artifact.

The checkpoint, column-store, metrics, and service-journal writers all
follow the same recipe — write to a temp file, flush, ``fsync``, then
``os.replace`` into place — which makes the *file contents* atomic.
What that recipe alone does not guarantee is that the **rename itself**
survives a power loss: the new directory entry lives in the parent
directory's data, and POSIX only promises it is on disk after the
*directory* is fsynced.  A daemon that acknowledged a job, crashed, and
restarted to find the journal segment or checkpoint vanished would
violate the service's no-lost-acknowledged-work contract.

:func:`fsync_directory` closes that gap.  Every atomic-replace site in
the tree calls it on the parent directory after ``os.replace`` (and
after creating a new append-only segment), so a post-crash restart can
never observe a missing artifact that a pre-crash acknowledgment
depended on.

The helper is deliberately tolerant of platforms where directories
cannot be opened or fsynced (Windows, some network filesystems): it
reports whether the sync happened rather than raising, because the
caller's data-file fsync already happened and refusing to run on such
platforms would be strictly worse.  The durability regression test
(``tests/unit/test_durability.py``) shims this module's ``os`` to
assert the call ordering instead.
"""

from __future__ import annotations

import os

__all__ = ["fsync_directory", "replace_and_sync_directory"]


def fsync_directory(path: os.PathLike) -> bool:
    """Fsync the directory at ``path``; returns whether it succeeded.

    Needed after ``os.replace``/``os.link``/file creation so the new
    directory entry is durable, not just the file contents.  Platforms
    that cannot open a directory read-only (``os.name != "posix"``) or
    whose filesystem rejects the fsync are tolerated: the function
    returns ``False`` instead of raising, and the caller's artifact is
    still content-complete.
    """
    if os.name != "posix":
        return False
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:
        return False
    try:
        os.fsync(fd)
    except OSError:
        return False
    finally:
        os.close(fd)
    return True


def replace_and_sync_directory(src: os.PathLike, dst: os.PathLike) -> None:
    """``os.replace`` + parent-directory fsync, as one durable step.

    Raises whatever ``os.replace`` raises; the directory sync itself is
    best-effort per :func:`fsync_directory`.
    """
    os.replace(src, dst)
    fsync_directory(os.path.dirname(os.path.abspath(dst)))
