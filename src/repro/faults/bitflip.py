"""Bitflip models: how an SDC corrupts a value's representation.

§4.2 characterizes computation SDCs at the bit level:

* **Observation 7** — for numeric data, flips concentrate in the middle
  of the representation and rarely hit the most significant bits; for
  floats this lands overwhelmingly in the IEEE-754 fraction, so
  precision losses are small.  Non-numeric (``bin*``) data shows roughly
  uniform flip positions (Figure 5).
* **Observation 8** — per setting (testcase × processor), flips tend to
  recur at fixed positions: *bitflip patterns*, i.e. recurring XOR
  masks, sometimes flipping 2 or more bits at once (Figure 7).

Three models implement this spectrum, plus the IID single-bit model the
paper critiques ("current failure models ... assume that every bitflip
on every position is IID" §4.2), kept for comparison experiments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..cpu.features import DataType

__all__ = [
    "BitflipModel",
    "PositionBiasedBitflip",
    "UniformBitflip",
    "PatternBitflip",
    "IIDBitflip",
    "default_flip_count_probs",
]


def default_flip_count_probs() -> Tuple[float, ...]:
    """Default distribution over number of simultaneously flipped bits.

    Figure 7 reports mostly single-bit flips with a considerable tail of
    2 and >2 flips (e.g. float64: 0.90 / 0.08 / 0.02).
    """
    return (0.90, 0.08, 0.02)


class BitflipModel(abc.ABC):
    """Samples an XOR mask to apply to a correct result's bit pattern."""

    @abc.abstractmethod
    def sample_mask(self, dtype: DataType, rng: np.random.Generator) -> int:
        """Return a non-zero XOR mask that fits in ``dtype.width`` bits."""

    def corrupt_bits(
        self, bits: int, dtype: DataType, rng: np.random.Generator
    ) -> int:
        """Apply a sampled mask to a bit pattern."""
        return bits ^ self.sample_mask(dtype, rng)


def _sample_flip_count(
    probs: Sequence[float], rng: np.random.Generator, max_bits: int
) -> int:
    """Draw the number of bits to flip: probs are P(1), P(2), P(>2)."""
    u = rng.random()
    if u < probs[0] or max_bits == 1:
        return 1
    if u < probs[0] + probs[1] or max_bits == 2:
        return 2
    # ">2" resolves to 3-4 flips, capped by the representation width.
    return min(int(rng.integers(3, 5)), max_bits)


#: How often a float flip lands in the fraction field, per type.
#: Observation 7: fraction flips dominate; the tiny exponent tail is
#: what produces float32's >5% losses, while the paper observed *no*
#: exponent hits at all for extended precision (all float64x losses
#: below 0.002%).
_FRACTION_BIAS: Dict[DataType, float] = {
    DataType.FLOAT32: 0.97,
    DataType.FLOAT64: 0.999,
    DataType.FLOAT64X: 1.0,
}

#: Top-of-fraction guard bits: fraction flips never land within this
#: many positions of the fraction's MSB.  Calibrated against Figure
#: 4(e)-(h)'s loss bands — float64x losses stay under ~2e-5, float32
#: fraction losses can reach a few percent.
_FRACTION_GUARD: Dict[DataType, int] = {
    DataType.FLOAT32: 3,
    DataType.FLOAT64: 0,
    DataType.FLOAT64X: 16,
}


@dataclass
class PositionBiasedBitflip(BitflipModel):
    """Numeric-data model: mid-representation concentration, MSB-shy.

    Positions are drawn from a discretized Gaussian centred at
    ``center`` (a relative position, 0 = LSB end, 1 = MSB end) with
    standard deviation ``spread`` (relative).  For floats the draw is
    restricted to the fraction field with a per-type probability
    (Observation 7: "a bitflip usually hits the fraction part").
    """

    center: float = 0.42
    spread: float = 0.14
    fraction_bias: float = 0.97
    flip_count_probs: Tuple[float, ...] = field(
        default_factory=default_flip_count_probs
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.center <= 1.0:
            raise ConfigurationError("center must be a relative position in [0,1]")
        if self.spread <= 0:
            raise ConfigurationError("spread must be positive")
        if not 0.0 <= self.fraction_bias <= 1.0:
            raise ConfigurationError("fraction_bias must be in [0,1]")

    def _position_range(self, dtype: DataType, rng: np.random.Generator) -> Tuple[int, int]:
        """Inclusive (low, high) bit-index range to draw from."""
        width = dtype.width
        if dtype.is_float:
            bias = min(self.fraction_bias, _FRACTION_BIAS[dtype])
            if rng.random() < bias:
                _, fraction_bits = dtype.float_fields
                guard = _FRACTION_GUARD[dtype]
                return 0, max(fraction_bits - 1 - guard, 1)
        return 0, width - 1

    def _sample_position(self, low: int, high: int, rng: np.random.Generator) -> int:
        span = high - low + 1
        mean = low + self.center * (span - 1)
        sd = self.spread * span
        for _ in range(64):
            pos = int(round(rng.normal(mean, sd)))
            if low <= pos <= high:
                return pos
        return int(rng.integers(low, high + 1))

    def sample_mask(self, dtype: DataType, rng: np.random.Generator) -> int:
        if not dtype.is_numeric:
            # Figure 5: non-numerical data shows no positional
            # preference — "all the positions have comparable amount of
            # bitflips".
            count = _sample_flip_count(
                self.flip_count_probs, rng, dtype.width
            )
            positions = rng.choice(dtype.width, size=count, replace=False)
            mask = 0
            for pos in positions:
                mask |= 1 << int(pos)
            return mask
        low, high = self._position_range(dtype, rng)
        count = _sample_flip_count(self.flip_count_probs, rng, high - low + 1)
        positions: set = set()
        while len(positions) < count:
            positions.add(self._sample_position(low, high, rng))
        mask = 0
        for pos in positions:
            mask |= 1 << pos
        return mask


@dataclass
class UniformBitflip(BitflipModel):
    """Non-numeric-data model: all positions comparably likely (Fig. 5)."""

    flip_count_probs: Tuple[float, ...] = field(
        default_factory=default_flip_count_probs
    )

    def sample_mask(self, dtype: DataType, rng: np.random.Generator) -> int:
        width = dtype.width
        count = _sample_flip_count(self.flip_count_probs, rng, width)
        positions = rng.choice(width, size=count, replace=False)
        mask = 0
        for pos in positions:
            mask |= 1 << int(pos)
        return mask


@dataclass
class PatternBitflip(BitflipModel):
    """Pattern-dominant model implementing Observation 8.

    With probability ``pattern_probability`` the mask is one of the
    defect's fixed per-datatype patterns (weighted choice); otherwise it
    falls back to a positional model.  A "setting" in the paper is a
    (testcase, processor) pair; because a testcase determines the
    operation datatype, per-datatype patterns reproduce per-setting
    patterns.
    """

    patterns: Dict[DataType, List[Tuple[int, float]]]
    pattern_probability: float
    fallback: BitflipModel

    def __post_init__(self) -> None:
        if not 0.0 <= self.pattern_probability <= 1.0:
            raise ConfigurationError("pattern_probability must be in [0,1]")
        for dtype, entries in self.patterns.items():
            if not entries:
                raise ConfigurationError(f"empty pattern list for {dtype}")
            for mask, weight in entries:
                if mask <= 0 or mask >> dtype.width:
                    raise ConfigurationError(
                        f"pattern {mask:#x} invalid for {dtype}"
                    )
                if weight <= 0:
                    raise ConfigurationError("pattern weights must be positive")

    def sample_mask(self, dtype: DataType, rng: np.random.Generator) -> int:
        entries = self.patterns.get(dtype)
        if entries and rng.random() < self.pattern_probability:
            masks = [mask for mask, _ in entries]
            weights = np.array([weight for _, weight in entries], dtype=float)
            weights /= weights.sum()
            return masks[int(rng.choice(len(masks), p=weights))]
        return self.fallback.sample_mask(dtype, rng)


@dataclass
class IIDBitflip(BitflipModel):
    """The classical irradiation-style model the paper critiques.

    Every position equally likely, exactly one bit flipped, independent
    across events.  Used as the comparison model when demonstrating the
    deficiencies listed at the end of §4.2 (location preference and
    flip correlation are both absent here).
    """

    def sample_mask(self, dtype: DataType, rng: np.random.Generator) -> int:
        return 1 << int(rng.integers(0, dtype.width))
