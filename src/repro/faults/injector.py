"""Fault injection: turning defects into corrupted values.

The injector combines a processor's defects, the trigger model, and the
defects' bitflip models.  Two consumers use it:

* the concrete :mod:`repro.cpu.executor`, which asks per instruction
  execution whether to corrupt a result (used by workloads, examples,
  and the §2.2 case studies);
* the statistical :mod:`repro.testing.runner`, which samples error
  *counts* for long test intervals and then materializes each error's
  corrupted value here (used by fleet-scale and catalog-scale studies,
  where executing every loop iteration in Python would be absurd).

Both paths share the same trigger law and bitflip models, so analyses
of either corpus agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..cpu import datatypes
from .trigger import TriggerModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cpu.defects import Defect
    from ..cpu.features import DataType
    from ..cpu.isa import Instruction
    from ..cpu.processor import Processor

__all__ = ["CorruptionEvent", "FaultInjector"]


@dataclass(frozen=True)
class CorruptionEvent:
    """One materialized SDC: a correct value replaced by a corrupt one."""

    defect_id: str
    instruction: str
    dtype: "DataType"
    expected_bits: int
    actual_bits: int

    @property
    def mask(self) -> int:
        return self.expected_bits ^ self.actual_bits

    @property
    def expected(self):
        return datatypes.decode(self.expected_bits, self.dtype)

    @property
    def actual(self):
        return datatypes.decode(self.actual_bits, self.dtype)


class FaultInjector:
    """Injects a processor's defects into executed or sampled work."""

    def __init__(
        self,
        processor: "Processor",
        trigger_model: Optional[TriggerModel] = None,
    ):
        self.processor = processor
        self.trigger = trigger_model or TriggerModel()

    # -- defect lookup -----------------------------------------------------

    def defects_for(
        self, instruction: "Instruction", pcore_id: int, age_days: Optional[float] = None
    ) -> List["Defect"]:
        """Active computation defects hitting this instruction on this core."""
        if pcore_id in self.processor.masked_cores:
            return []
        return [
            defect
            for defect in self.processor.active_defects(age_days)
            if not defect.is_consistency
            and defect.affects_core(pcore_id)
            and defect.affects_instruction(instruction.mnemonic)
        ]

    # -- concrete per-execution path ----------------------------------------

    def maybe_corrupt(
        self,
        instruction: "Instruction",
        correct_value,
        pcore_id: int,
        temperature_c: float,
        usage_per_s: float,
        setting_key: str,
        rng: np.random.Generator,
        scale: float = 1.0,
    ) -> Tuple[object, Optional[CorruptionEvent]]:
        """Possibly corrupt one instruction result.

        Returns ``(value, event)`` where ``event`` is ``None`` when the
        result is architecturally correct.  ``scale`` is a time-
        compression factor: each executed instruction stands for that
        many hardware executions, letting second-long Python runs
        represent the minutes-to-hours of real execution over which
        SDC occurrence frequencies are defined.
        """
        for defect in self.defects_for(instruction, pcore_id):
            probability = scale * self.trigger.per_execution_probability(
                defect, setting_key, temperature_c, usage_per_s, pcore_id
            )
            if probability > 0.0 and rng.random() < probability:
                event = self.materialize(defect, instruction, correct_value, rng)
                return event.actual, event
        return correct_value, None

    # -- value materialization ----------------------------------------------

    def materialize(
        self,
        defect: "Defect",
        instruction: "Instruction",
        correct_value,
        rng: np.random.Generator,
    ) -> CorruptionEvent:
        """Produce the corrupted value for one SDC of a defect."""
        if defect.bitflip is None:
            raise ConfigurationError(
                f"defect {defect.defect_id} has no bitflip model"
            )
        dtype = instruction.dtype
        if dtype not in defect.datatypes:
            # A defect can only corrupt datatypes its feature touches;
            # the runner filters settings, so reaching here is a bug.
            raise ConfigurationError(
                f"defect {defect.defect_id} does not corrupt {dtype}"
            )
        expected_bits = datatypes.encode(correct_value, dtype)
        mask = defect.bitflip.sample_mask(dtype, rng)
        actual_bits = expected_bits ^ mask
        return CorruptionEvent(
            defect_id=defect.defect_id,
            instruction=instruction.mnemonic,
            dtype=dtype,
            expected_bits=expected_bits,
            actual_bits=actual_bits,
        )
