"""Fault realization: bitflip models, trigger law, injector."""

from .bitflip import (
    BitflipModel,
    IIDBitflip,
    PatternBitflip,
    PositionBiasedBitflip,
    UniformBitflip,
    default_flip_count_probs,
)
from .trigger import SettingBehaviour, TriggerModel
from .injector import CorruptionEvent, FaultInjector
from .campaign import CampaignResult, InjectionCampaign, compare_failure_models

__all__ = [
    "BitflipModel",
    "IIDBitflip",
    "PatternBitflip",
    "PositionBiasedBitflip",
    "UniformBitflip",
    "default_flip_count_probs",
    "SettingBehaviour",
    "TriggerModel",
    "CorruptionEvent",
    "FaultInjector",
    "CampaignResult",
    "InjectionCampaign",
    "compare_failure_models",
]
