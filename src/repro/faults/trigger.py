"""The SDC triggering-condition model (Observations 9-10).

The paper quantifies reproducibility as *occurrence frequency* (errors
per minute) per **setting** — a (testcase, processor) combination — and
finds:

* frequencies span 0.01 to hundreds of errors/minute (Obs. 9);
* above a setting-specific *minimum triggering temperature*, the log of
  the frequency grows linearly with core temperature (Obs. 10, Fig. 8);
* below that temperature, days of testing reproduce nothing;
* instruction-usage stress matters: testcases that use a defective
  instruction orders of magnitude less frequently show no errors (§5);
* across settings, the frequency at the minimum triggering temperature
  anti-correlates with that temperature (Fig. 9, r ≈ −0.83) — this
  correlation is generated where defects are *created* (catalog /
  population), not here; this module realizes the per-setting law.

Per-setting adjustments (tmin jitter, frequency jitter) are derived
deterministically from the defect id and the setting key, so the same
(CPU, testcase) pair always has the same behaviour — which is exactly
what lets regular testing and Farron's "suspected" priority work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError
from ..rng import substream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cpu.defects import Defect

__all__ = ["TriggerModel", "SettingBehaviour", "CompiledSetting"]

#: Usage (defective-instruction executions per second) at which
#: ``log10_freq_at_tmin`` is calibrated.  A tight instruction loop in
#: the toolchain reaches roughly this rate.
DEFAULT_REFERENCE_USAGE = 1.0e6

#: The exponential temperature ramp saturates this many °C above the
#: setting's minimum triggering temperature — timing-margin erosion
#: plateaus once the defective path fails on most sensitive inputs.
DEFAULT_RAMP_CAP_C = 10.0

#: Absolute occurrence-frequency ceiling (errors/minute).  Observation 9
#: reports frequencies "as high as hundreds of times per minute"; the
#: law saturates there rather than growing without bound.
DEFAULT_MAX_FREQ_PER_MIN = 500.0

#: Usage-stress cliff, as a fraction of the reference usage.  §5 finds
#: failed testcases use a defective instruction "several orders of
#: magnitude more frequently than other testcases" — below this floor a
#: setting triggers nothing at all, which is why diffuse application-
#: class testcases pass even though they execute defective instructions
#: (§4.1: "not all testcases executing a defective instruction will
#: generate errors").
DEFAULT_USAGE_FLOOR_FRACTION = 0.3


@dataclass(frozen=True)
class SettingBehaviour:
    """Resolved triggering behaviour of one (defect, testcase) setting."""

    defect_id: str
    setting_key: str
    tmin_c: float
    log10_freq_at_tmin: float
    temp_slope: float
    stress_exponent: float


@dataclass(frozen=True, slots=True)
class CompiledSetting:
    """One (defect, testcase, core) setting with the law pre-resolved.

    Both toolchain engines sit in a per-window loop where the only
    live variable of :meth:`TriggerModel.sample_errors` is the core
    temperature (and the window length); everything else — the memoized
    behaviour lookup, the core multiplier, the usage-stress power — is
    fixed for the whole testcase run.  Compiling hoists that setup out
    of the loop while keeping the remaining float operations in exactly
    the order ``occurrence_frequency`` performs them, so a compiled
    setting consumes the same RNG draws and produces the same counts
    bit for bit.  ``stress`` and ``multiplier`` stay separate factors
    (not pre-merged) because the law multiplies left to right:
    ``((10**log10_freq) * stress) * multiplier``.
    """

    tmin_c: float
    log10_freq_at_tmin: float
    temp_slope: float
    stress: float
    multiplier: float
    ramp_cap_c: float
    max_freq_per_min: float

    def expected_errors(self, temperature_c: float, duration_s: float) -> float:
        """Poisson mean over an interval; 0.0 below ``tmin_c``."""
        if temperature_c < self.tmin_c:
            return 0.0
        ramp = min(temperature_c - self.tmin_c, self.ramp_cap_c)
        log10_freq = self.log10_freq_at_tmin + self.temp_slope * ramp
        freq = (10.0**log10_freq) * self.stress * self.multiplier
        return min(freq, self.max_freq_per_min) * duration_s / 60.0

    def sample_errors(
        self, temperature_c: float, duration_s: float, rng: np.random.Generator
    ) -> int:
        """Sample an SDC count; draws from ``rng`` only when the mean
        is positive, like :meth:`TriggerModel.sample_errors`."""
        mean = self.expected_errors(temperature_c, duration_s)
        if mean <= 0.0:
            return 0
        return int(rng.poisson(mean))


class TriggerModel:
    """Computes SDC occurrence frequencies for settings.

    Stateless except for the calibration constant ``reference_usage``;
    all randomness is derived from stable identifiers, so two model
    instances agree everywhere.
    """

    def __init__(
        self,
        reference_usage: float = DEFAULT_REFERENCE_USAGE,
        ramp_cap_c: float = DEFAULT_RAMP_CAP_C,
        max_freq_per_min: float = DEFAULT_MAX_FREQ_PER_MIN,
        usage_floor_fraction: float = DEFAULT_USAGE_FLOOR_FRACTION,
    ):
        if reference_usage <= 0:
            raise ConfigurationError("reference_usage must be positive")
        if ramp_cap_c <= 0 or max_freq_per_min <= 0:
            raise ConfigurationError("saturation caps must be positive")
        if not 0.0 <= usage_floor_fraction < 1.0:
            raise ConfigurationError("usage_floor_fraction must be in [0, 1)")
        self.reference_usage = reference_usage
        self.ramp_cap_c = ramp_cap_c
        self.max_freq_per_min = max_freq_per_min
        self.usage_floor = usage_floor_fraction * reference_usage
        # Behaviours are pure functions of (defect_id, setting_key);
        # memoized because this sits on the runner's hot path.
        self._behaviour_cache: dict = {}

    # -- per-setting resolution -------------------------------------------

    def behaviour(self, defect: "Defect", setting_key: str) -> SettingBehaviour:
        """Resolve the deterministic per-setting triggering parameters."""
        cache_key = (defect.defect_id, setting_key)
        cached = self._behaviour_cache.get(cache_key)
        if cached is not None:
            return cached
        rng = substream(0, "trigger", defect.defect_id, setting_key)
        profile = defect.trigger
        tmin = profile.tmin + float(rng.uniform(0.0, profile.tmin_jitter))
        log10_f0 = profile.log10_freq_at_tmin + float(
            rng.normal(0.0, profile.freq_jitter)
        )
        resolved = SettingBehaviour(
            defect_id=defect.defect_id,
            setting_key=setting_key,
            tmin_c=tmin,
            log10_freq_at_tmin=log10_f0,
            temp_slope=profile.temp_slope,
            stress_exponent=profile.stress_exponent,
        )
        self._behaviour_cache[cache_key] = resolved
        return resolved

    def compile_setting(
        self,
        defect: "Defect",
        setting_key: str,
        usage_per_s: float,
        pcore_id: int,
    ) -> "CompiledSetting | None":
        """Pre-resolve the law for one (defect, testcase, core) setting.

        Returns ``None`` when the setting can never trigger at *any*
        temperature — zero core multiplier or usage below the stress
        floor, exactly the conditions under which
        :meth:`occurrence_frequency` returns 0.0 before resolving the
        behaviour.  Such settings never touch the runner's RNG, so a
        caller may drop them from its sampling loop without changing
        any draw.
        """
        multiplier = defect.core_multiplier(pcore_id)
        if multiplier == 0.0 or usage_per_s < self.usage_floor:
            return None
        behaviour = self.behaviour(defect, setting_key)
        stress = (usage_per_s / self.reference_usage) ** behaviour.stress_exponent
        return CompiledSetting(
            tmin_c=behaviour.tmin_c,
            log10_freq_at_tmin=behaviour.log10_freq_at_tmin,
            temp_slope=behaviour.temp_slope,
            stress=stress,
            multiplier=multiplier,
            ramp_cap_c=self.ramp_cap_c,
            max_freq_per_min=self.max_freq_per_min,
        )

    # -- the law ------------------------------------------------------------

    def occurrence_frequency(
        self,
        defect: "Defect",
        setting_key: str,
        temperature_c: float,
        usage_per_s: float,
        pcore_id: int,
    ) -> float:
        """Errors per minute for a setting under given conditions.

        Zero below the setting's minimum triggering temperature, on a
        masked-out core, or before defect onset is irrelevant here (the
        caller gates on onset).  Above tmin the frequency is exponential
        in temperature and polynomial in relative usage stress.
        """
        multiplier = defect.core_multiplier(pcore_id)
        if multiplier == 0.0 or usage_per_s < self.usage_floor:
            return 0.0
        behaviour = self.behaviour(defect, setting_key)
        if temperature_c < behaviour.tmin_c:
            return 0.0
        ramp = min(temperature_c - behaviour.tmin_c, self.ramp_cap_c)
        log10_freq = behaviour.log10_freq_at_tmin + behaviour.temp_slope * ramp
        stress = (usage_per_s / self.reference_usage) ** behaviour.stress_exponent
        freq = (10.0**log10_freq) * stress * multiplier
        return min(freq, self.max_freq_per_min)

    def per_execution_probability(
        self,
        defect: "Defect",
        setting_key: str,
        temperature_c: float,
        usage_per_s: float,
        pcore_id: int,
    ) -> float:
        """Probability that one execution of a defective instruction
        produces an SDC, consistent with the per-minute frequency."""
        freq_per_min = self.occurrence_frequency(
            defect, setting_key, temperature_c, usage_per_s, pcore_id
        )
        if freq_per_min == 0.0:
            return 0.0
        per_second = freq_per_min / 60.0
        return min(per_second / usage_per_s, 1.0)

    def expected_errors(
        self,
        defect: "Defect",
        setting_key: str,
        temperature_c: float,
        usage_per_s: float,
        pcore_id: int,
        duration_s: float,
    ) -> float:
        """Expected SDC count over a test interval (Poisson mean)."""
        freq_per_min = self.occurrence_frequency(
            defect, setting_key, temperature_c, usage_per_s, pcore_id
        )
        return freq_per_min * duration_s / 60.0

    def sample_errors(
        self,
        defect: "Defect",
        setting_key: str,
        temperature_c: float,
        usage_per_s: float,
        pcore_id: int,
        duration_s: float,
        rng: np.random.Generator,
    ) -> int:
        """Sample an SDC count for a test interval."""
        mean = self.expected_errors(
            defect, setting_key, temperature_c, usage_per_s, pcore_id, duration_s
        )
        if mean <= 0.0:
            return 0
        return int(rng.poisson(mean))
