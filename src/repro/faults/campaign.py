"""Fault-injection campaigns: comparing failure models at application level.

§8: "fault injection is widely used [to evaluate fault-tolerance
systems] ... Our observations can help improve the injector designs so
as to better evaluate the solutions to SDCs in production
environments."  §4.2 lists the deficiencies of IID-irradiation
injectors: no location preference, no flip correlation.

A :class:`InjectionCampaign` drives a numeric workload (dot products,
the HPC staple) under a configurable bitflip model and measures the
*application-level* consequences — how large the result errors are and
how often a simple sanity check would notice.  Running it under the
study model and the IID model side by side quantifies how much an IID
injector misestimates production SDC impact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import substream
from ..cpu import datatypes
from ..cpu.features import DataType
from .bitflip import BitflipModel, IIDBitflip, PositionBiasedBitflip

__all__ = ["CampaignResult", "InjectionCampaign", "compare_failure_models"]


@dataclass
class CampaignResult:
    """Application-level impact of one injection campaign."""

    model_name: str
    runs: int
    injections: int
    #: Relative error of each corrupted run's final result.
    relative_errors: List[float] = field(default_factory=list)
    #: Runs whose result became non-finite (inf/nan) — immediately
    #: visible, i.e. *not* silent.
    non_finite: int = 0

    @property
    def silent_fraction(self) -> float:
        """Share of corrupted runs that stayed finite (truly silent)."""
        if not self.injections:
            return 0.0
        return len(self.relative_errors) / self.injections

    def median_error(self) -> float:
        if not self.relative_errors:
            return 0.0
        ordered = sorted(self.relative_errors)
        return ordered[len(ordered) // 2]

    def fraction_below(self, threshold: float) -> float:
        if not self.relative_errors:
            return 0.0
        return sum(1 for e in self.relative_errors if e < threshold) / len(
            self.relative_errors
        )


@dataclass
class InjectionCampaign:
    """Injects one flip per run into a float64 dot-product workload."""

    model: BitflipModel
    model_name: str
    vector_len: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vector_len < 2:
            raise ConfigurationError("vector_len must be at least 2")

    def run(self, runs: int = 500) -> CampaignResult:
        rng = substream(self.seed, "campaign", self.model_name)
        result = CampaignResult(model_name=self.model_name, runs=runs, injections=0)
        for _ in range(runs):
            xs = rng.uniform(0.5, 2.0, size=self.vector_len)
            ys = rng.uniform(0.5, 2.0, size=self.vector_len)
            golden = float(np.dot(xs, ys))
            # Corrupt one intermediate partial sum mid-reduction.
            split = int(rng.integers(1, self.vector_len))
            partial = float(np.dot(xs[:split], ys[:split]))
            bits = datatypes.encode(partial, DataType.FLOAT64)
            bits ^= self.model.sample_mask(DataType.FLOAT64, rng)
            corrupted_partial = datatypes.decode(bits, DataType.FLOAT64)
            result.injections += 1
            final = corrupted_partial + float(np.dot(xs[split:], ys[split:]))
            if not math.isfinite(final):
                result.non_finite += 1
                continue
            result.relative_errors.append(abs(final - golden) / abs(golden))
        return result


def compare_failure_models(
    runs: int = 800, seed: int = 0
) -> List[CampaignResult]:
    """The §4.2 injector-design comparison: study model vs IID model."""
    campaigns = [
        InjectionCampaign(
            PositionBiasedBitflip(), "study (position-biased, patterns)",
            seed=seed,
        ),
        InjectionCampaign(IIDBitflip(), "IID single-flip (irradiation)", seed=seed),
    ]
    return [campaign.run(runs) for campaign in campaigns]
