"""Matrix-calculation workload (Table 3's most common impacted workload).

Computes small dense matrix products on the simulated CPU using the
fused multiply-add vector instruction — the exact instruction the
toolchain fingered in SIMD1 ("a vector instruction that performs
multiplication and addition operations simultaneously", §4.1).  Each
element is an FMA reduction; results are verified against a pure-Python
golden computation, so corrupted elements are observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..cpu.executor import Executor
from ..faults.injector import CorruptionEvent

__all__ = ["MatrixMultiplyResult", "matrix_multiply"]


@dataclass
class MatrixMultiplyResult:
    """A product matrix plus any corruption observed computing it."""

    product: List[List[float]]
    golden: List[List[float]]
    events: List[CorruptionEvent] = field(default_factory=list)

    @property
    def corrupted_elements(self) -> List[Tuple[int, int]]:
        return [
            (i, j)
            for i, row in enumerate(self.product)
            for j, value in enumerate(row)
            if value != self.golden[i][j]
        ]

    @property
    def corrupted(self) -> bool:
        return bool(self.corrupted_elements)

    def max_relative_error(self) -> float:
        worst = 0.0
        for i, j in self.corrupted_elements:
            expected = self.golden[i][j]
            if expected == 0.0:
                continue
            worst = max(
                worst, abs(self.product[i][j] - expected) / abs(expected)
            )
        return worst


def matrix_multiply(
    executor: Executor,
    a: Sequence[Sequence[float]],
    b: Sequence[Sequence[float]],
    pcore_id: int = 0,
    temperature_c: float = 45.0,
    precision: str = "f32",
) -> MatrixMultiplyResult:
    """C = A @ B on the simulated core, element by FMA reduction."""
    if precision not in ("f32", "f64"):
        raise ConfigurationError("precision must be 'f32' or 'f64'")
    mnemonic = "VFMA_F32" if precision == "f32" else "VFMA_F64"
    rows, inner = len(a), len(a[0])
    if any(len(row) != inner for row in a):
        raise ConfigurationError("matrix A is ragged")
    if len(b) != inner:
        raise ConfigurationError("inner dimensions disagree")
    cols = len(b[0])
    if any(len(row) != cols for row in b):
        raise ConfigurationError("matrix B is ragged")

    # One flat program: rows*cols*inner FMA steps.  The accumulator
    # chaining is resolved per element after execution.
    program = []
    for i in range(rows):
        for j in range(cols):
            for k in range(inner):
                # Placeholder accumulator; real chaining happens below.
                program.append((mnemonic, (a[i][k], b[k][j], 0.0)))

    # Execute element-by-element so accumulators chain through the
    # executor (a corrupted partial sum must propagate, as it would in
    # hardware).
    instruction = executor.isa[mnemonic]
    usage = 1.0e6  # a dense kernel keeps the FMA unit saturated
    rng = executor.rng_for(f"matrix-{precision}", pcore_id)
    product: List[List[float]] = [[0.0] * cols for _ in range(rows)]
    golden: List[List[float]] = [[0.0] * cols for _ in range(rows)]
    events: List[CorruptionEvent] = []
    for i in range(rows):
        for j in range(cols):
            accumulator = 0.0
            expected = 0.0
            for k in range(inner):
                expected = instruction.execute(a[i][k], b[k][j], expected)
                correct = instruction.execute(a[i][k], b[k][j], accumulator)
                value, event = executor.injector.maybe_corrupt(
                    instruction,
                    correct,
                    pcore_id=pcore_id,
                    temperature_c=temperature_c,
                    usage_per_s=usage,
                    setting_key=f"matrix-{precision}",
                    rng=rng,
                    scale=executor.time_compression,
                )
                accumulator = value
                if event is not None:
                    events.append(event)
            product[i][j] = accumulator
            golden[i][j] = expected
    return MatrixMultiplyResult(product=product, golden=golden, events=events)
