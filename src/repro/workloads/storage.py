"""The storage application of the §2.2 case studies, end to end.

Two production incidents are reproduced:

* **Checksum-mismatch storm** (first case): clients compute a CRC per
  request on a (possibly faulty) core; the server verifies against the
  correct CRC of the received data.  A defective checksum instruction
  makes verification fail *spuriously* — the data is fine — and the
  client retries, so "such incorrect information misled the cloud
  application to conclude that request data was corrupted and thus
  triggered repeated requests frequently" (§1).
* **Shared-buffer inconsistency** (second case): a client thread packs
  data and checksum into a buffer shared with a daemon thread; with
  defective cache coherence the daemon reads a stale half and reports a
  mismatch that no amount of client retrying explains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..rng import substream
from ..cpu.coherence import CoherentSystem, drop_hook_from_defect
from ..cpu.executor import Executor
from ..cpu.features import Feature
from ..cpu.processor import Processor
from ..faults.trigger import TriggerModel
from .checksum import crc32, crc32_golden

__all__ = ["StorageRunReport", "run_request_storm", "run_shared_buffer_daemon"]


@dataclass
class StorageRunReport:
    """Service-level outcome of a storage workload run."""

    requests: int
    mismatches: int
    retries: int
    #: Requests whose payload was genuinely corrupted (always 0 here:
    #: the paper's point is that the *data* was fine).
    true_corruptions: int = 0

    @property
    def mismatch_rate(self) -> float:
        return self.mismatches / self.requests if self.requests else 0.0


def run_request_storm(
    executor: Executor,
    n_requests: int = 200,
    payload_len: int = 64,
    pcore_id: int = 0,
    temperature_c: float = 45.0,
    max_retries: int = 3,
    seed: int = 0,
) -> StorageRunReport:
    """Client computes CRC on the simulated core; server verifies.

    Each mismatch triggers a retry (recomputing the checksum on the
    same faulty core), so one reproducible defect inflates request
    traffic — the performance impairment of the paper's first case.
    """
    rng = substream(seed, "storage-storm")
    mismatches = 0
    retries = 0
    for _ in range(n_requests):
        payload = [int(b) for b in rng.integers(0, 256, size=payload_len)]
        server_crc = crc32_golden(payload)
        for attempt in range(max_retries + 1):
            client = crc32(
                executor, payload, pcore_id=pcore_id, temperature_c=temperature_c
            )
            if client.digest == server_crc:
                break
            mismatches += 1
            if attempt < max_retries:
                retries += 1
    return StorageRunReport(
        requests=n_requests, mismatches=mismatches, retries=retries
    )


def run_shared_buffer_daemon(
    processor: Processor,
    n_messages: int = 2_000,
    temperature_c: float = 60.0,
    ops_per_s: float = 5.0e5,
    trigger: Optional[TriggerModel] = None,
    seed: int = 0,
    time_compression: float = 1.0,
) -> StorageRunReport:
    """Client thread publishes (data, checksum); daemon thread verifies.

    Runs on the coherence simulator with the processor's cache defect
    (if any) injected; a healthy processor yields zero mismatches.
    """
    trigger = trigger or TriggerModel()
    rng = substream(seed, "storage-daemon", processor.processor_id)
    cache_defect = next(
        (
            d
            for d in processor.active_defects()
            if d.is_consistency and Feature.CACHE in d.features
        ),
        None,
    )
    hook = None
    if cache_defect is not None:
        # The daemon thread (simulator core 1) runs on a defective
        # physical core, like the unlucky production placement of §2.2.
        pcores = [0, cache_defect.core_ids[0]]
        raw_hook = drop_hook_from_defect(
            cache_defect, trigger, "storage-daemon",
            temperature_c, ops_per_s, rng,
            time_compression=time_compression,
        )

        def hook(event, core_id, _raw=raw_hook, _map=pcores):
            return _raw(event, _map[core_id])

    system = CoherentSystem(n_cores=2, drop_hook=hook)
    data_addr, checksum_addr = 100, 101

    mismatches = 0
    for _ in range(n_messages):
        data = int(rng.integers(0, 1 << 32))
        system.write(0, data_addr, data)
        system.write(0, checksum_addr, data & 0xFFFF)
        seen_data = system.read(1, data_addr)
        seen_checksum = system.read(1, checksum_addr)
        if seen_checksum != (seen_data & 0xFFFF):
            mismatches += 1
    return StorageRunReport(
        requests=n_messages, mismatches=mismatches, retries=0
    )
