"""Checksum-calculation workload (the paper's first §2.2 case study).

A storage client computes CRC-32 checksums over request payloads using
the hardware CRC instruction.  On a healthy core, recomputing the
checksum always matches; on a core with a defective checksum
instruction (MIX1/MIX2-style), the computed digest is occasionally
wrong, so the *server side* sees a mismatch against correct data —
"frequently reported checksum mismatch of the user data" even though
the data itself is fine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..cpu.executor import Executor
from ..faults.injector import CorruptionEvent

__all__ = ["ChecksumResult", "crc32", "crc32_golden"]

_INIT = 0xFFFFFFFF


@dataclass
class ChecksumResult:
    """A computed digest plus corruption observed during computation."""

    digest: int
    golden: int
    events: List[CorruptionEvent] = field(default_factory=list)

    @property
    def corrupted(self) -> bool:
        return self.digest != self.golden


def crc32_golden(payload: Sequence[int]) -> int:
    """Architecturally correct CRC-32 of a byte sequence."""
    from ..cpu.isa import DEFAULT_ISA

    step = DEFAULT_ISA["CRC32_B32"]
    crc = _INIT
    for byte in payload:
        crc = step.execute(crc, byte & 0xFF)
    return crc ^ _INIT


def crc32(
    executor: Executor,
    payload: Sequence[int],
    pcore_id: int = 0,
    temperature_c: float = 45.0,
) -> ChecksumResult:
    """CRC-32 of a byte payload on the simulated core.

    A corrupted intermediate CRC propagates through the remaining
    bytes, exactly as a faulty CRC32 instruction corrupts the final
    digest in hardware.
    """
    instruction = executor.isa["CRC32_B32"]
    rng = executor.rng_for("checksum-crc32", pcore_id)
    usage = 1.0e6  # checksum loops saturate the CRC unit
    crc = _INIT
    golden = _INIT
    events: List[CorruptionEvent] = []
    for byte in payload:
        byte &= 0xFF
        golden = instruction.execute(golden, byte)
        correct = instruction.execute(crc, byte)
        value, event = executor.injector.maybe_corrupt(
            instruction,
            correct,
            pcore_id=pcore_id,
            temperature_c=temperature_c,
            usage_per_s=usage,
            setting_key="checksum-crc32",
            rng=rng,
            scale=executor.time_compression,
        )
        crc = value
        if event is not None:
            events.append(event)
    return ChecksumResult(
        digest=crc ^ _INIT, golden=golden ^ _INIT, events=events
    )
