"""Impacted application workloads (§2.2 case studies, Table 3)."""

from .matrix import MatrixMultiplyResult, matrix_multiply
from .checksum import ChecksumResult, crc32, crc32_golden
from .hashing import LookupOutcome, MetadataService
from .mathfn import MathLibResult, MathLibrary
from .strings import StringTransformResult, pack_utf16, reverse_words
from .bigint import BigIntResult, bigint_add
from .storage import (
    StorageRunReport,
    run_request_storm,
    run_shared_buffer_daemon,
)
from .transactional import LedgerReport, run_transfer_service

__all__ = [
    "MatrixMultiplyResult",
    "matrix_multiply",
    "ChecksumResult",
    "crc32",
    "crc32_golden",
    "LookupOutcome",
    "MetadataService",
    "MathLibResult",
    "MathLibrary",
    "StringTransformResult",
    "pack_utf16",
    "reverse_words",
    "BigIntResult",
    "bigint_add",
    "StorageRunReport",
    "run_request_storm",
    "run_shared_buffer_daemon",
    "LedgerReport",
    "run_transfer_service",
]
