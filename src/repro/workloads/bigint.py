"""Large-integer arithmetic workload (Table 3: impacted on MIX1).

Multi-precision addition over 64-bit limbs using the add-with-carry
instruction.  One corrupted limb addition silently changes the whole
number — and, unlike float fraction flips, the precision loss depends
on which limb was hit, which is the integer half of Observation 7's
contrast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import ConfigurationError
from ..cpu.executor import Executor
from ..faults.injector import CorruptionEvent

__all__ = ["BigIntResult", "bigint_add"]

_LIMB_BITS = 64
_LIMB_MASK = (1 << _LIMB_BITS) - 1


def _to_limbs(value: int, n_limbs: int) -> List[int]:
    if value < 0:
        raise ConfigurationError("bigint workload handles non-negative values")
    limbs = []
    for _ in range(n_limbs):
        limbs.append(value & _LIMB_MASK)
        value >>= _LIMB_BITS
    if value:
        raise ConfigurationError("value does not fit in the limb count")
    return limbs


def _from_limbs(limbs: List[int]) -> int:
    value = 0
    for limb in reversed(limbs):
        value = (value << _LIMB_BITS) | limb
    return value


@dataclass
class BigIntResult:
    value: int
    golden: int
    events: List[CorruptionEvent] = field(default_factory=list)

    @property
    def corrupted(self) -> bool:
        return self.value != self.golden

    def relative_error(self) -> float:
        if self.golden == 0:
            return 0.0 if self.value == 0 else float("inf")
        return abs(self.value - self.golden) / self.golden


def bigint_add(
    executor: Executor,
    a: int,
    b: int,
    n_limbs: int = 8,
    pcore_id: int = 0,
    temperature_c: float = 45.0,
) -> BigIntResult:
    """a + b over ``n_limbs`` 64-bit limbs with hardware add-with-carry.

    The carry chain means a corrupted limb can also poison carries into
    higher limbs, exactly as on real hardware.
    """
    instruction = executor.isa["ADC_B64"]
    rng = executor.rng_for("bigint-adc", pcore_id)
    limbs_a = _to_limbs(a, n_limbs)
    limbs_b = _to_limbs(b, n_limbs)

    events: List[CorruptionEvent] = []

    def run_chain(corrupting: bool) -> List[int]:
        carry = 0
        out = []
        for la, lb in zip(limbs_a, limbs_b):
            correct = instruction.execute(la, lb, carry)
            if corrupting:
                value, event = executor.injector.maybe_corrupt(
                    instruction,
                    correct,
                    pcore_id=pcore_id,
                    temperature_c=temperature_c,
                    usage_per_s=8.0e5,
                    setting_key="bigint-adc",
                    rng=rng,
                    scale=executor.time_compression,
                )
                if event is not None:
                    events.append(event)
            else:
                value = correct
            # Carry derives from the (possibly corrupted) limb value the
            # way hardware flags would.
            full = la + lb + carry
            carry = 1 if full >> _LIMB_BITS else 0
            out.append(int(value))
        return out

    golden_limbs = run_chain(corrupting=False)
    actual_limbs = run_chain(corrupting=True)
    return BigIntResult(
        value=_from_limbs(actual_limbs),
        golden=_from_limbs(golden_limbs),
        events=events,
    )
