"""String-manipulation workload (Table 3: impacted on MIX1).

Vectorized string transforms — byte shuffles for case/byte-order
manipulation and 16-bit packing for encoding — run on the vector and
ALU units.  A defective shuffle or pack silently mangles characters,
which is how "string manipulation" appears among MIX1's impacted
workloads with ``byte``/``bin16``/``bin32`` datatypes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..cpu.executor import Executor
from ..faults.injector import CorruptionEvent

__all__ = ["StringTransformResult", "reverse_words", "pack_utf16"]

#: PSHUFB-style selector reversing the 4 bytes of a 32-bit lane.
_REVERSE_SELECTOR = 0b00_01_10_11


@dataclass
class StringTransformResult:
    output: bytes
    golden: bytes
    events: List[CorruptionEvent] = field(default_factory=list)

    @property
    def corrupted(self) -> bool:
        return self.output != self.golden


def _chunks32(data: bytes) -> List[int]:
    padded = data + b"\x00" * (-len(data) % 4)
    return [
        int.from_bytes(padded[i : i + 4], "little")
        for i in range(0, len(padded), 4)
    ]


def reverse_words(
    executor: Executor,
    data: bytes,
    pcore_id: int = 0,
    temperature_c: float = 45.0,
) -> StringTransformResult:
    """Reverse bytes within each 32-bit word using the vector shuffle."""
    instruction = executor.isa["VSHUF_B32"]
    rng = executor.rng_for("strings-shuffle", pcore_id)
    out = bytearray()
    gold = bytearray()
    events: List[CorruptionEvent] = []
    for lane in _chunks32(data):
        correct = instruction.execute(lane, _REVERSE_SELECTOR)
        gold += int(correct).to_bytes(4, "little")
        value, event = executor.injector.maybe_corrupt(
            instruction,
            correct,
            pcore_id=pcore_id,
            temperature_c=temperature_c,
            usage_per_s=7.0e5,
            setting_key="strings-shuffle",
            rng=rng,
            scale=executor.time_compression,
        )
        out += int(value).to_bytes(4, "little")
        if event is not None:
            events.append(event)
    return StringTransformResult(bytes(out), bytes(gold), events)


def pack_utf16(
    executor: Executor,
    text: str,
    pcore_id: int = 0,
    temperature_c: float = 45.0,
) -> StringTransformResult:
    """Encode ASCII text into 16-bit units via the pack instruction."""
    instruction = executor.isa["PACK_B16"]
    rng = executor.rng_for("strings-pack", pcore_id)
    out = bytearray()
    gold = bytearray()
    events: List[CorruptionEvent] = []
    for char in text:
        code = ord(char) & 0xFF
        correct = instruction.execute(0, code)
        gold += int(correct).to_bytes(2, "big")
        value, event = executor.injector.maybe_corrupt(
            instruction,
            correct,
            pcore_id=pcore_id,
            temperature_c=temperature_c,
            usage_per_s=7.0e5,
            setting_key="strings-pack",
            rng=rng,
            scale=executor.time_compression,
        )
        out += int(value).to_bytes(2, "big")
        if event is not None:
            events.append(event)
    return StringTransformResult(bytes(out), bytes(gold), events)
