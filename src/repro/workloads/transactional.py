"""Transactional-memory application workload (CNST1/CNST2's victims).

A bank-transfer style service: every operation moves units between two
accounts inside a transaction, so the global balance is invariant.  A
torn commit (the CNST defect) applies the debit without the credit —
money silently disappears, the transactional analogue of Meta's
"misjudged the file size to be zero ... caused a database to lose
files" class of silent corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..rng import substream
from ..cpu.features import Feature
from ..cpu.processor import Processor
from ..cpu.txmem import TransactionalMemory, tear_hook_from_defect
from ..faults.trigger import TriggerModel

__all__ = ["LedgerReport", "run_transfer_service"]


@dataclass
class LedgerReport:
    """Outcome of a transfer-service run."""

    transfers_committed: int
    conflicts: int
    initial_total: int
    final_total: int
    torn_commits: int

    @property
    def balance_lost(self) -> int:
        return self.initial_total - self.final_total

    @property
    def consistent(self) -> bool:
        return self.balance_lost == 0


def run_transfer_service(
    processor: Processor,
    n_accounts: int = 16,
    n_transfers: int = 4_000,
    threads: int = 4,
    initial_balance: int = 1_000,
    temperature_c: float = 60.0,
    commits_per_s: float = 5.0e5,
    trigger: Optional[TriggerModel] = None,
    seed: int = 0,
    time_compression: float = 1.0,
) -> LedgerReport:
    """Run transfers on the TM simulator with the CPU's defect injected."""
    trigger = trigger or TriggerModel()
    rng = substream(seed, "transfer-service", processor.processor_id)
    tm_defect = next(
        (
            d
            for d in processor.active_defects()
            if d.is_consistency and Feature.TRX_MEM in d.features
        ),
        None,
    )
    hook = None
    if tm_defect is not None:
        affected = list(tm_defect.core_ids)
        raw_hook = tear_hook_from_defect(
            tm_defect, trigger, "transfer-service",
            temperature_c, commits_per_s, rng,
            time_compression=time_compression,
        )

        def hook(core_id, _raw=raw_hook, _map=affected):
            return _raw(_map[core_id % len(_map)])

    memory = TransactionalMemory(tear_hook=hook)
    for account in range(n_accounts):
        memory.store[account] = initial_balance
    initial_total = n_accounts * initial_balance

    committed = 0
    conflicts = 0
    for i in range(n_transfers):
        core = i % threads
        src = int(rng.integers(n_accounts))
        dst = int(rng.integers(n_accounts))
        if src == dst:
            continue
        amount = int(rng.integers(1, 50))
        memory.begin(core)
        src_balance = memory.read(core, src)
        dst_balance = memory.read(core, dst)
        if src_balance < amount:
            memory.abort(core)
            continue
        memory.write(core, src, src_balance - amount)
        memory.write(core, dst, dst_balance + amount)
        if memory.commit(core):
            committed += 1
        else:
            conflicts += 1
    final_total = sum(memory.store[a] for a in range(n_accounts))
    return LedgerReport(
        transfers_committed=committed,
        conflicts=conflicts,
        initial_total=initial_total,
        final_total=final_total,
        torn_commits=len(memory.violations),
    )
