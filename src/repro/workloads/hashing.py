"""Hash-map metadata service (the paper's third §2.2 case study).

    "The application used a hash map to manage its metadata, and
    defective hashing calculation in a faulty processor affected its
    metadata service" — the symptom was assertion failures.

The service hashes keys with the crypto round instruction to pick a
bucket and to fingerprint entries.  A corrupted hash at *insert* time
places the entry in the wrong bucket (or stores a wrong fingerprint);
the later *lookup*, computing the correct hash, misses the entry or
trips the fingerprint assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..cpu.executor import Executor
from ..faults.injector import CorruptionEvent

__all__ = ["MetadataService", "LookupOutcome"]

_HASH_SEED = 0x5DEECE66D


@dataclass
class LookupOutcome:
    """Result of one metadata lookup."""

    key: int
    found: bool
    assertion_failed: bool


@dataclass
class MetadataService:
    """A bucketized metadata store keyed by hardware-hashed keys."""

    executor: Executor
    n_buckets: int = 64
    pcore_id: int = 0
    temperature_c: float = 45.0

    def __post_init__(self) -> None:
        if self.n_buckets <= 0:
            raise ConfigurationError("n_buckets must be positive")
        self._buckets: List[Dict[int, Tuple[int, int]]] = [
            {} for _ in range(self.n_buckets)
        ]
        self.events: List[CorruptionEvent] = []
        self.assertion_failures = 0
        self._rng = self.executor.rng_for("hashing-service", self.pcore_id)

    # -- the hardware hash -------------------------------------------------

    def _hash(self, key: int) -> int:
        """64-bit hash on the simulated core (may be corrupted)."""
        instruction = self.executor.isa["SHAROUND_B64"]
        correct = instruction.execute(key & ((1 << 64) - 1), _HASH_SEED)
        value, event = self.executor.injector.maybe_corrupt(
            instruction,
            correct,
            pcore_id=self.pcore_id,
            temperature_c=self.temperature_c,
            usage_per_s=9.0e5,  # the service hashes on every operation
            setting_key="hashing-service",
            rng=self._rng,
            scale=self.executor.time_compression,
        )
        if event is not None:
            self.events.append(event)
        return value

    def _golden_hash(self, key: int) -> int:
        return self.executor.isa["SHAROUND_B64"].execute(
            key & ((1 << 64) - 1), _HASH_SEED
        )

    # -- service operations -----------------------------------------------------

    def put(self, key: int, value: int) -> None:
        digest = self._hash(key)
        bucket = digest % self.n_buckets
        self._buckets[bucket][key] = (value, digest)

    def get(self, key: int) -> LookupOutcome:
        """Lookup with the paper's failure modes.

        A wrong hash at lookup time sends us to the wrong bucket (miss)
        or, if the entry is found by key, a stored-vs-recomputed
        fingerprint mismatch fires the assertion.
        """
        digest = self._hash(key)
        bucket = digest % self.n_buckets
        entry = self._buckets[bucket].get(key)
        if entry is None:
            return LookupOutcome(key=key, found=False, assertion_failed=False)
        _, stored_digest = entry
        if stored_digest != digest:
            self.assertion_failures += 1
            return LookupOutcome(key=key, found=True, assertion_failed=True)
        return LookupOutcome(key=key, found=True, assertion_failed=False)

    def golden_get(self, key: int) -> bool:
        """Whether the key is stored under its *correct* bucket."""
        digest = self._golden_hash(key)
        return key in self._buckets[digest % self.n_buckets]
