"""Mathematical-function library workload (FPU1/FPU2's victim).

§4.1: FPU1 "produces incorrect results on a specific floating-point
calculation operation, which is used by a library widely used in HPC
applications" — the suspect instruction computes the arctangent in
extended precision.  This module is that library: vectorized elementwise
``atan`` (plus ``sin``/``log``) evaluated on the simulated core, with a
golden pass for verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from ..errors import ConfigurationError
from ..cpu.executor import Executor
from ..faults.injector import CorruptionEvent

__all__ = ["MathLibResult", "MathLibrary"]

_FUNCTION_INSTRUCTIONS = {
    "atan": "FATAN_F64X",
    "sin": "FSIN_F64",
    "log": "FLOG_F64X",
    "exp": "FEXP_F64",
}


@dataclass
class MathLibResult:
    """Elementwise results plus any corruption that occurred."""

    values: List[float]
    golden: List[float]
    events: List[CorruptionEvent] = field(default_factory=list)

    @property
    def wrong_indices(self) -> List[int]:
        return [
            i for i, (v, g) in enumerate(zip(self.values, self.golden)) if v != g
        ]

    @property
    def corrupted(self) -> bool:
        return bool(self.wrong_indices)

    def max_relative_error(self) -> float:
        worst = 0.0
        for i in self.wrong_indices:
            if self.golden[i] != 0.0:
                worst = max(
                    worst,
                    abs(self.values[i] - self.golden[i]) / abs(self.golden[i]),
                )
        return worst


@dataclass
class MathLibrary:
    """An HPC math library bound to one core of a simulated CPU."""

    executor: Executor
    pcore_id: int = 0
    temperature_c: float = 45.0

    def apply(self, function: str, inputs: Sequence[float]) -> MathLibResult:
        """Evaluate an elementwise function over an input vector."""
        mnemonic = _FUNCTION_INSTRUCTIONS.get(function)
        if mnemonic is None:
            raise ConfigurationError(
                f"unknown function {function!r}; "
                f"known: {sorted(_FUNCTION_INSTRUCTIONS)}"
            )
        instruction = self.executor.isa[mnemonic]
        rng = self.executor.rng_for(f"mathlib-{function}", self.pcore_id)
        values: List[float] = []
        golden: List[float] = []
        events: List[CorruptionEvent] = []
        for x in inputs:
            correct = instruction.execute(x)
            golden.append(correct)
            value, event = self.executor.injector.maybe_corrupt(
                instruction,
                correct,
                pcore_id=self.pcore_id,
                temperature_c=self.temperature_c,
                usage_per_s=8.0e5,  # HPC kernels hammer the function unit
                setting_key=f"mathlib-{function}",
                rng=rng,
                scale=self.executor.time_compression,
            )
            values.append(float(value))
            if event is not None:
                events.append(event)
        return MathLibResult(values=values, golden=golden, events=events)

    def atan(self, inputs: Sequence[float]) -> MathLibResult:
        return self.apply("atan", inputs)

    def sin(self, inputs: Sequence[float]) -> MathLibResult:
        return self.apply("sin", inputs)

    def log(self, inputs: Sequence[float]) -> MathLibResult:
        return self.apply("log", inputs)
