"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints every reproduced table/figure as text so
``pytest benchmarks/`` output is self-contained: paper value beside
measured value wherever the paper publishes a number.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_histogram", "side_by_side"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    columns = [
        [str(header)] + [str(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(row[i]).ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def render_series(
    pairs: Sequence[Tuple[object, float]],
    title: Optional[str] = None,
    value_format: str = "{:.4f}",
) -> str:
    """Render (label, value) pairs, one per line."""
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max((len(str(label)) for label, _ in pairs), default=0)
    for label, value in pairs:
        lines.append(
            f"  {str(label).ljust(label_width)}  {value_format.format(value)}"
        )
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float],
    labels: Optional[Sequence[object]] = None,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """ASCII bar chart (used for the figure benchmarks)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(values, default=0.0)
    if labels is None:
        labels = list(range(len(values)))
    label_width = max((len(str(label)) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(f"  {str(label).rjust(label_width)} |{bar} {value:.4f}")
    return "\n".join(lines)


def side_by_side(
    paper: Mapping[str, float],
    measured: Mapping[str, float],
    title: Optional[str] = None,
    value_format: str = "{:.3f}",
) -> str:
    """Paper-vs-measured comparison table over shared keys."""
    rows = []
    for key in paper:
        measured_value = measured.get(key)
        rows.append(
            (
                key,
                value_format.format(paper[key]),
                "-"
                if measured_value is None
                else value_format.format(measured_value),
            )
        )
    return render_table(("key", "paper", "measured"), rows, title=title)
