"""Least-squares fits and Pearson correlation.

§5 fits ``log10(occurrence frequency)`` against core temperature "based
on the least square method" and reports Pearson correlation
coefficients (Figure 8: r = 0.7903 / 0.9243 / 0.8855; Figure 9:
r = −0.8272).  Implemented directly (closed-form simple regression)
rather than through scipy, so the formulas under the paper's numbers
are visible and unit-testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["LinearFit", "linear_fit", "pearson_r"]


@dataclass(frozen=True)
class LinearFit:
    """y = slope * x + intercept, with the fit's Pearson r."""

    slope: float
    intercept: float
    pearson_r: float
    n: int

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def _validate(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys):
        raise ConfigurationError("x and y must have equal length")
    if len(xs) < 2:
        raise ConfigurationError("need at least two points")


def pearson_r(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two samples."""
    _validate(xs, ys)
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares simple regression."""
    _validate(xs, ys)
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0.0:
        raise ConfigurationError("x values are constant; slope undefined")
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov / var_x
    intercept = mean_y - slope * mean_x
    return LinearFit(
        slope=slope,
        intercept=intercept,
        pearson_r=pearson_r(xs, ys),
        n=n,
    )
