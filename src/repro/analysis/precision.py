"""Precision-loss analysis (Observation 7, Figure 4(e)-(h)).

The paper quantifies each computation SDC's damage as the relative
precision loss between expected and actual values, and plots its CDF
per numeric data type on a base-10 logarithmic axis.  Because flips
land overwhelmingly in IEEE-754 fraction bits, float losses are tiny
(all float64x losses < 0.002%; 99.9% of float64 < 0.02%; 80.25% of
float32 < 5%) while integer losses are large (40.2% of int32 > 100%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..cpu.features import DataType
from ..testing.records import SDCRecord

__all__ = [
    "precision_losses",
    "log10_losses",
    "empirical_cdf",
    "fraction_below",
    "fraction_above",
    "PrecisionSummary",
    "summarize_precision",
]


def precision_losses(
    records: Iterable[SDCRecord], dtype: DataType
) -> List[float]:
    """Relative precision losses of records of one numeric type."""
    if not dtype.is_numeric:
        raise ConfigurationError(f"{dtype} has no precision-loss semantics")
    losses = []
    for record in records:
        if record.dtype is not dtype:
            continue
        loss = record.precision_loss
        if loss is not None:
            losses.append(loss)
    return losses


def log10_losses(losses: Sequence[float]) -> List[float]:
    """Base-10 logs of non-zero, finite losses (Figure 4's x axis)."""
    return [
        math.log10(loss)
        for loss in losses
        if loss > 0.0 and math.isfinite(loss)
    ]


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs of the empirical CDF."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def fraction_below(losses: Sequence[float], threshold: float) -> float:
    """Fraction of losses strictly below a threshold."""
    if not losses:
        return 0.0
    return sum(1 for loss in losses if loss < threshold) / len(losses)


def fraction_above(losses: Sequence[float], threshold: float) -> float:
    if not losses:
        return 0.0
    return sum(1 for loss in losses if loss > threshold) / len(losses)


@dataclass(frozen=True)
class PrecisionSummary:
    """The headline statistics §4.2 quotes per data type."""

    dtype: DataType
    count: int
    median: float
    p999: float
    max: float
    #: Fractions at the thresholds the paper quotes.
    below_0002pct: float  # < 0.002%  (float64x claim)
    below_002pct: float   # < 0.02%   (float64 claim)
    below_5pct: float     # < 5%      (float32 claim)
    above_100pct: float   # > 100%    (int32 claim)


def summarize_precision(
    records: Iterable[SDCRecord], dtype: DataType
) -> PrecisionSummary:
    losses = precision_losses(records, dtype)
    if not losses:
        return PrecisionSummary(dtype, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(losses)
    n = len(ordered)

    def quantile(q: float) -> float:
        return ordered[min(int(q * n), n - 1)]

    return PrecisionSummary(
        dtype=dtype,
        count=n,
        median=quantile(0.5),
        p999=quantile(0.999),
        max=ordered[-1],
        below_0002pct=fraction_below(losses, 0.002 / 100.0),
        below_002pct=fraction_below(losses, 0.02 / 100.0),
        below_5pct=fraction_below(losses, 5.0 / 100.0),
        above_100pct=fraction_above(losses, 100.0 / 100.0),
    )
