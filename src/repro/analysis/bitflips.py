"""Bitflip analysis of computation-SDC records (§4.2).

Implements the paper's measurement machinery:

* per-bit-index flip histograms split by direction (Figures 4(a)-(d)
  and 5), computed from expected/actual bit patterns;
* the *bitflip pattern* rule: "If more than 5% of the SDC records of a
  setting have the same mask, we regard this mask as a bitflip pattern"
  (Observation 8), plus the per-setting proportion of records matching
  some pattern (Figure 6);
* the flipped-bit-count distribution among pattern-matching SDCs
  (Figure 7);
* flip-direction statistics ("51.08% of bitflips are changed from zero
  to one").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..errors import ConfigurationError
from ..cpu.datatypes import flipped_positions, popcount
from ..cpu.features import DataType
from ..testing.records import RecordStore, SDCRecord, SettingKey

__all__ = [
    "PATTERN_THRESHOLD",
    "BitflipHistogram",
    "bitflip_histogram",
    "flip_direction_fraction",
    "setting_patterns",
    "pattern_proportion",
    "pattern_proportions_by_setting",
    "flip_count_distribution",
]

#: Observation 8's pattern rule: a mask recurring in >5% of a setting's
#: records is a bitflip pattern.
PATTERN_THRESHOLD = 0.05


@dataclass
class BitflipHistogram:
    """Per-bit-index flip counts, split by direction."""

    dtype: DataType
    zero_to_one: List[int] = field(default_factory=list)
    one_to_zero: List[int] = field(default_factory=list)
    total_records: int = 0

    def __post_init__(self) -> None:
        width = self.dtype.width
        if not self.zero_to_one:
            self.zero_to_one = [0] * width
        if not self.one_to_zero:
            self.one_to_zero = [0] * width

    def proportions(self) -> Tuple[List[float], List[float]]:
        """Per-position flip proportions (fraction of records flipping
        that bit in each direction) — the y-axis of Figures 4/5."""
        if self.total_records == 0:
            zeros = [0.0] * self.dtype.width
            return zeros, list(zeros)
        zero_to_one = [c / self.total_records for c in self.zero_to_one]
        one_to_zero = [c / self.total_records for c in self.one_to_zero]
        return zero_to_one, one_to_zero

    def msb_flip_fraction(self, msb_count: int = 4) -> float:
        """Share of flips landing in the top ``msb_count`` positions.

        Observation 7: "it is rare that bitflips occur in the most
        significant bits" of numeric data.
        """
        total = sum(self.zero_to_one) + sum(self.one_to_zero)
        if total == 0:
            return 0.0
        top = sum(self.zero_to_one[-msb_count:]) + sum(
            self.one_to_zero[-msb_count:]
        )
        return top / total


def bitflip_histogram(
    records: Iterable[SDCRecord], dtype: DataType
) -> BitflipHistogram:
    """Build the Figure-4/5 histogram for one data type."""
    histogram = BitflipHistogram(dtype=dtype)
    for record in records:
        if record.dtype is not dtype:
            continue
        histogram.total_records += 1
        mask = record.mask
        expected = record.expected_bits
        for position in flipped_positions(mask):
            if expected & (1 << position):
                histogram.one_to_zero[position] += 1
            else:
                histogram.zero_to_one[position] += 1
    return histogram


def flip_direction_fraction(records: Iterable[SDCRecord]) -> float:
    """Fraction of individual bitflips going 0→1 (paper: 51.08%)."""
    zero_to_one = 0
    total = 0
    for record in records:
        expected = record.expected_bits
        for position in flipped_positions(record.mask):
            total += 1
            if not expected & (1 << position):
                zero_to_one += 1
    if total == 0:
        return 0.0
    return zero_to_one / total


def setting_patterns(
    records: Sequence[SDCRecord], threshold: float = PATTERN_THRESHOLD
) -> List[int]:
    """Masks that qualify as bitflip patterns for one setting's records."""
    if not records:
        return []
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError("threshold must be in (0, 1)")
    counts: Dict[int, int] = {}
    for record in records:
        counts[record.mask] = counts.get(record.mask, 0) + 1
    cutoff = threshold * len(records)
    return sorted(
        mask for mask, count in counts.items() if count > cutoff
    )


def pattern_proportion(
    records: Sequence[SDCRecord], threshold: float = PATTERN_THRESHOLD
) -> float:
    """Share of a setting's records whose mask is some pattern (Fig. 6)."""
    if not records:
        return 0.0
    patterns = set(setting_patterns(records, threshold))
    if not patterns:
        return 0.0
    matching = sum(1 for record in records if record.mask in patterns)
    return matching / len(records)


def pattern_proportions_by_setting(
    store: RecordStore,
    threshold: float = PATTERN_THRESHOLD,
    min_records: int = 5,
) -> Dict[SettingKey, float]:
    """Figure 6's per-setting pattern proportions.

    Settings with fewer than ``min_records`` records are skipped — a
    pattern needs repetitions to be meaningful.
    """
    return {
        setting: pattern_proportion(records, threshold)
        for setting, records in store.by_setting().items()
        if len(records) >= min_records
    }


def flip_count_distribution(
    store: RecordStore,
    dtype: DataType,
    threshold: float = PATTERN_THRESHOLD,
    pattern_only: bool = True,
) -> Dict[str, float]:
    """Figure 7: proportion of 1 / 2 / >2 flipped bits.

    Computed over pattern-matching SDCs (the figure's caption: "in SDCs
    with bitflip patterns") unless ``pattern_only`` is False.
    """
    masks: List[int] = []
    for setting, records in store.by_setting().items():
        typed = [r for r in records if r.dtype is dtype]
        if not typed:
            continue
        if pattern_only:
            patterns = set(setting_patterns(typed, threshold))
            masks.extend(r.mask for r in typed if r.mask in patterns)
        else:
            masks.extend(r.mask for r in typed)
    if not masks:
        return {"1": 0.0, "2": 0.0, ">2": 0.0}
    counts = {"1": 0, "2": 0, ">2": 0}
    for mask in masks:
        bits = popcount(mask)
        if bits == 1:
            counts["1"] += 1
        elif bits == 2:
            counts["2"] += 1
        else:
            counts[">2"] += 1
    total = len(masks)
    return {key: value / total for key, value in counts.items()}
