"""Columnar SDC-record analytics: struct-of-arrays frames + kernels.

The §4-§5 figures are aggregate statistics over record populations —
ten thousand records in the paper, hundreds of thousands in the
synthetic fleet corpora — and the scalar analysis modules
(:mod:`repro.analysis.bitflips`, :mod:`repro.analysis.precision`) pay a
Python-level loop per record, per bit, per setting.  This module is the
columnar fast path: a :class:`RecordFrame` lowers a
:class:`~repro.testing.records.RecordStore` into NumPy columns *once*,
and every figure kernel becomes a handful of whole-column operations.

Every kernel is **bit-identical** to its scalar counterpart under the
same corpus:

* flip-position histograms accumulate the same integer counts into the
  same :class:`~repro.analysis.bitflips.BitflipHistogram` shape;
* Observation-8 pattern mining (``np.unique`` over XOR masks grouped by
  setting) reports the same pattern sets and the same matching
  proportions — integer count ratios divide to the same doubles;
* flip-count distributions bucket the same popcounts;
* precision columns replicate the scalar decode semantics exactly —
  float32/float64 bit patterns reinterpret via views, int16/int32 sign-
  extend, and the 80-bit x87 format decodes through the same
  correctly-rounded uint64→double conversion and ``ldexp`` scaling the
  scalar codec uses, so CDFs, quantiles, and threshold fractions match
  to the last ulp.

Records wider than 64 bits (``float64x``) split across a low/high word
pair; masks compare and sort as (high, low) lexicographic pairs, which
is exactly integer order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..cpu.features import DataType
from ..perf.bitops import popcount_u64
from ..testing.records import RecordStore, SDCRecord, SettingKey
from .bitflips import PATTERN_THRESHOLD, BitflipHistogram
from .precision import PrecisionSummary

__all__ = [
    "RecordFrame",
    "DetectionFrame",
    "save_record_frame",
    "load_record_frame",
    "popcount_u64",
    "bitflip_histogram_frame",
    "flip_direction_fraction_frame",
    "setting_patterns_frame",
    "patterns_by_setting_frame",
    "pattern_proportions_by_setting_frame",
    "flip_count_distribution_frame",
    "precision_losses_frame",
    "empirical_cdf_frame",
    "summarize_precision_frame",
]

_MASK64 = (1 << 64) - 1

#: Stable dtype→code mapping shared by every frame.
_DTYPE_ORDER: Tuple[DataType, ...] = tuple(DataType)
_DTYPE_CODE: Dict[DataType, int] = {
    dtype: code for code, dtype in enumerate(_DTYPE_ORDER)
}


# -- vectorized decode / precision loss ---------------------------------------

_F64X_BIAS = 16383


def _decode_float_column(lo: np.ndarray, hi: np.ndarray, dtype: DataType) -> np.ndarray:
    """Decode float bit patterns into float64 values, column-at-a-time.

    Bit-identical to :func:`repro.cpu.datatypes.decode`: float32 widens
    exactly, float64 reinterprets, and float64x replays the scalar
    codec's ``float(significand)`` rounding and ``ldexp`` scaling.
    """
    if dtype is DataType.FLOAT32:
        return lo.astype(np.uint32).view(np.float32).astype(np.float64)
    if dtype is DataType.FLOAT64:
        return lo.view(np.float64)
    # float64x: sign(1) | exponent(15, bias 16383) | significand(64).
    sign = np.where(hi >> np.uint64(15) & np.uint64(1), -1.0, 1.0)
    biased = (hi & np.uint64(0x7FFF)).astype(np.int64)
    significand = lo
    frac63 = significand & np.uint64((1 << 63) - 1)
    # uint64 → float64 is the same correctly-rounded conversion as
    # CPython's float(int); ldexp is exact power-of-two scaling.
    magnitude = np.ldexp(
        significand.astype(np.float64), (biased - _F64X_BIAS - 63).astype(np.int64)
    )
    value = sign * magnitude
    special = biased == 0x7FFF
    value = np.where(special & (frac63 != 0), np.nan, value)
    value = np.where(special & (frac63 == 0), sign * np.inf, value)
    value = np.where((biased == 0) & (significand == 0), sign * 0.0, value)
    return value


def _decode_int_column(lo: np.ndarray, dtype: DataType) -> np.ndarray:
    """Decode integer bit patterns into exact float64 values."""
    width = dtype.width
    values = lo.astype(np.int64)
    if dtype.is_signed:
        sign_bit = np.int64(1) << np.int64(width - 1)
        values = np.where(values & sign_bit, values - (np.int64(1) << np.int64(width)), values)
    return values.astype(np.float64)


def _precision_loss_column(
    expected_lo: np.ndarray,
    expected_hi: np.ndarray,
    actual_lo: np.ndarray,
    actual_hi: np.ndarray,
    dtype_code: np.ndarray,
) -> np.ndarray:
    """Relative precision loss per row; NaN for non-numeric rows.

    Replicates :func:`repro.cpu.datatypes.relative_precision_loss` for
    every numeric dtype: corrupted inf/nan actuals → inf, zero expected
    with nonzero actual → inf, zero/zero → 0, else
    ``|actual - expected| / |expected|`` in IEEE double.
    """
    losses = np.full(len(dtype_code), np.nan)
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        for dtype in _DTYPE_ORDER:
            if not dtype.is_numeric:
                continue
            rows = np.flatnonzero(dtype_code == _DTYPE_CODE[dtype])
            if rows.size == 0:
                continue
            e_lo, e_hi = expected_lo[rows], expected_hi[rows]
            a_lo, a_hi = actual_lo[rows], actual_hi[rows]
            if dtype.is_float:
                expected = _decode_float_column(e_lo, e_hi, dtype)
                actual = _decode_float_column(a_lo, a_hi, dtype)
            else:
                expected = _decode_int_column(e_lo, dtype)
                actual = _decode_int_column(a_lo, dtype)
            loss = np.abs(actual - expected) / np.abs(expected)
            loss = np.where(np.isnan(actual) | np.isinf(actual), np.inf, loss)
            zero_expected = expected == 0.0
            loss = np.where(zero_expected & (actual == 0.0), 0.0, loss)
            loss = np.where(zero_expected & (actual != 0.0), np.inf, loss)
            losses[rows] = loss
    return losses


# -- the frame -----------------------------------------------------------------


@dataclass
class RecordFrame:
    """Struct-of-arrays view of a computation-SDC record corpus.

    Columns are aligned with the store's record order.  Words wider
    than 64 bits split into ``*_lo`` (bits 0-63) and ``*_hi``
    (bits 64+, only nonzero for ``float64x``).
    """

    expected_lo: np.ndarray
    expected_hi: np.ndarray
    actual_lo: np.ndarray
    actual_hi: np.ndarray
    mask_lo: np.ndarray
    mask_hi: np.ndarray
    dtype_code: np.ndarray
    setting_code: np.ndarray
    processor_code: np.ndarray
    testcase_code: np.ndarray
    precision_loss: np.ndarray
    #: Setting keys in first-appearance order (scalar ``by_setting``'s
    #: dict order), so grouped results iterate identically.
    settings: Tuple[SettingKey, ...]
    processors: Tuple[str, ...]
    testcases: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.mask_lo)

    @classmethod
    def from_store(cls, store: RecordStore) -> "RecordFrame":
        return cls.from_records(store.records)

    @classmethod
    def from_records(cls, records: Sequence[SDCRecord]) -> "RecordFrame":
        n = len(records)
        expected_lo = np.empty(n, np.uint64)
        expected_hi = np.empty(n, np.uint64)
        actual_lo = np.empty(n, np.uint64)
        actual_hi = np.empty(n, np.uint64)
        dtype_code = np.empty(n, np.int16)
        setting_code = np.empty(n, np.int32)
        processor_code = np.empty(n, np.int32)
        testcase_code = np.empty(n, np.int32)

        settings: Dict[SettingKey, int] = {}
        processors: Dict[str, int] = {}
        testcases: Dict[str, int] = {}
        dtype_codes = _DTYPE_CODE
        for row, record in enumerate(records):
            expected = record.expected_bits
            actual = record.actual_bits
            expected_lo[row] = expected & _MASK64
            expected_hi[row] = expected >> 64
            actual_lo[row] = actual & _MASK64
            actual_hi[row] = actual >> 64
            dtype_code[row] = dtype_codes[record.dtype]
            processor_id = record.processor_id
            testcase_id = record.testcase_id
            key = (processor_id, testcase_id)
            code = settings.get(key)
            if code is None:
                code = len(settings)
                settings[key] = code
            setting_code[row] = code
            pcode = processors.get(processor_id)
            if pcode is None:
                pcode = len(processors)
                processors[processor_id] = pcode
            processor_code[row] = pcode
            tcode = testcases.get(testcase_id)
            if tcode is None:
                tcode = len(testcases)
                testcases[testcase_id] = tcode
            testcase_code[row] = tcode

        mask_lo = expected_lo ^ actual_lo
        mask_hi = expected_hi ^ actual_hi
        precision_loss = _precision_loss_column(
            expected_lo, expected_hi, actual_lo, actual_hi, dtype_code
        )
        return cls(
            expected_lo=expected_lo,
            expected_hi=expected_hi,
            actual_lo=actual_lo,
            actual_hi=actual_hi,
            mask_lo=mask_lo,
            mask_hi=mask_hi,
            dtype_code=dtype_code,
            setting_code=setting_code,
            processor_code=processor_code,
            testcase_code=testcase_code,
            precision_loss=precision_loss,
            settings=tuple(settings),
            processors=tuple(processors),
            testcases=tuple(testcases),
        )

    # -- row selections -------------------------------------------------------

    def rows_for_dtype(self, dtype: DataType) -> np.ndarray:
        return np.flatnonzero(self.dtype_code == _DTYPE_CODE[dtype])

    def masks_as_ints(self, rows: np.ndarray) -> List[int]:
        """Python-int masks for selected rows (hi << 64 | lo)."""
        lo = self.mask_lo[rows]
        hi = self.mask_hi[rows]
        return [(int(h) << 64) | int(l) for h, l in zip(hi, lo)]


# -- Figure 4/5 histograms -----------------------------------------------------


def bitflip_histogram_frame(
    frame: RecordFrame, dtype: DataType
) -> BitflipHistogram:
    """Columnar :func:`repro.analysis.bitflips.bitflip_histogram`."""
    rows = frame.rows_for_dtype(dtype)
    histogram = BitflipHistogram(dtype=dtype)
    histogram.total_records = int(rows.size)
    if rows.size == 0:
        return histogram
    width = dtype.width
    masks_lo = frame.mask_lo[rows]
    expected_lo = frame.expected_lo[rows]
    one = np.uint64(1)
    for position in range(min(width, 64)):
        shift = np.uint64(position)
        flipped = (masks_lo >> shift) & one
        ones = (expected_lo >> shift) & one
        one_to_zero = int(np.count_nonzero(flipped & ones))
        histogram.one_to_zero[position] = one_to_zero
        histogram.zero_to_one[position] = int(np.count_nonzero(flipped)) - one_to_zero
    if width > 64:
        masks_hi = frame.mask_hi[rows]
        expected_hi = frame.expected_hi[rows]
        for position in range(width - 64):
            shift = np.uint64(position)
            flipped = (masks_hi >> shift) & one
            ones = (expected_hi >> shift) & one
            one_to_zero = int(np.count_nonzero(flipped & ones))
            histogram.one_to_zero[64 + position] = one_to_zero
            histogram.zero_to_one[64 + position] = (
                int(np.count_nonzero(flipped)) - one_to_zero
            )
    return histogram


def flip_direction_fraction_frame(frame: RecordFrame) -> float:
    """Columnar :func:`repro.analysis.bitflips.flip_direction_fraction`."""
    total = int(popcount_u64(frame.mask_lo).sum()) + int(
        popcount_u64(frame.mask_hi).sum()
    )
    if total == 0:
        return 0.0
    zero_to_one = int(
        popcount_u64(frame.mask_lo & ~frame.expected_lo).sum()
    ) + int(popcount_u64(frame.mask_hi & ~frame.expected_hi).sum())
    return zero_to_one / total


# -- Observation 8: pattern mining ---------------------------------------------


def _setting_groups(frame: RecordFrame) -> List[np.ndarray]:
    """Row indices per setting code, in first-appearance order.

    A stable argsort keeps rows inside each group in record order, so
    derived integer counts match the scalar grouping exactly.
    """
    order = np.argsort(frame.setting_code, kind="stable")
    if order.size == 0:
        return []
    sorted_codes = frame.setting_code[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    return np.split(order, boundaries)


def _unique_masks(
    frame: RecordFrame, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unique (hi, lo) mask pairs and their multiplicities."""
    pairs = np.stack((frame.mask_hi[rows], frame.mask_lo[rows]), axis=1)
    return np.unique(pairs, axis=0, return_counts=True)


def _mask_runs(
    codes: np.ndarray, mask_hi: np.ndarray, mask_lo: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run-length encode (setting, mask) pairs across the whole corpus.

    One lexsort replaces a per-setting ``np.unique`` loop: rows sort by
    (setting code, mask hi, mask lo), so equal masks within a setting
    become contiguous runs.  Returns ``(run_start_rows, run_lengths,
    run_setting_codes)`` where ``run_start_rows`` indexes the *sorted*
    order's first row of each run.  Run multiplicities are exactly the
    per-setting mask counts the scalar dict accumulation produces.
    """
    order = np.lexsort((mask_lo, mask_hi, codes))
    s = codes[order]
    h = mask_hi[order]
    l = mask_lo[order]
    new_run = np.empty(len(order), dtype=bool)
    new_run[0] = True
    new_run[1:] = (s[1:] != s[:-1]) | (h[1:] != h[:-1]) | (l[1:] != l[:-1])
    starts = np.flatnonzero(new_run)
    lengths = np.diff(np.append(starts, len(order)))
    return order[starts], lengths, s[starts]


def setting_patterns_frame(
    frame: RecordFrame,
    rows: np.ndarray,
    threshold: float = PATTERN_THRESHOLD,
) -> List[int]:
    """Columnar :func:`repro.analysis.bitflips.setting_patterns` over a
    row selection (one setting's records)."""
    if rows.size == 0:
        return []
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError("threshold must be in (0, 1)")
    pairs, counts = _unique_masks(frame, rows)
    cutoff = threshold * rows.size
    qualifying = pairs[counts > cutoff]
    # (hi, lo) rows of np.unique are already lexicographically sorted,
    # which is integer order.
    return [(int(hi) << 64) | int(lo) for hi, lo in qualifying]


def patterns_by_setting_frame(
    frame: RecordFrame, threshold: float = PATTERN_THRESHOLD
) -> Dict[SettingKey, List[int]]:
    """Observation-8 pattern sets for every setting in the frame."""
    return {
        frame.settings[int(frame.setting_code[rows[0]])]: setting_patterns_frame(
            frame, rows, threshold
        )
        for rows in _setting_groups(frame)
    }


def pattern_proportions_by_setting_frame(
    frame: RecordFrame,
    threshold: float = PATTERN_THRESHOLD,
    min_records: int = 5,
) -> Dict[SettingKey, float]:
    """Columnar
    :func:`repro.analysis.bitflips.pattern_proportions_by_setting`."""
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError("threshold must be in (0, 1)")
    if len(frame) == 0:
        return {}
    n_settings = len(frame.settings)
    sizes = np.bincount(frame.setting_code, minlength=n_settings)
    _, lengths, run_settings = _mask_runs(
        frame.setting_code, frame.mask_hi, frame.mask_lo
    )
    # Scalar cutoff comparison: count > threshold * group_size, in the
    # same double arithmetic.
    qualifying = lengths > threshold * sizes[run_settings]
    matched = np.zeros(n_settings, dtype=np.int64)
    np.add.at(matched, run_settings[qualifying], lengths[qualifying])
    proportions: Dict[SettingKey, float] = {}
    for code in range(n_settings):
        size = int(sizes[code])
        if size < min_records:
            continue
        matching = int(matched[code])
        proportions[frame.settings[code]] = (
            matching / size if matching else 0.0
        )
    return proportions


def flip_count_distribution_frame(
    frame: RecordFrame,
    dtype: DataType,
    threshold: float = PATTERN_THRESHOLD,
    pattern_only: bool = True,
) -> Dict[str, float]:
    """Columnar :func:`repro.analysis.bitflips.flip_count_distribution`."""
    typed = frame.rows_for_dtype(dtype)
    if typed.size == 0:
        return {"1": 0.0, "2": 0.0, ">2": 0.0}
    codes = frame.setting_code[typed]
    mask_hi = frame.mask_hi[typed]
    mask_lo = frame.mask_lo[typed]
    start_rows, lengths, run_settings = _mask_runs(codes, mask_hi, mask_lo)
    if pattern_only:
        # Group size is the setting's count *of this dtype's rows* —
        # the scalar path filters by dtype before mining patterns.
        sizes = np.bincount(codes, minlength=int(codes.max()) + 1)
        keep = lengths > threshold * sizes[run_settings]
        start_rows = start_rows[keep]
        lengths = lengths[keep]
    total = int(lengths.sum())
    if total == 0:
        return {"1": 0.0, "2": 0.0, ">2": 0.0}
    bits = popcount_u64(mask_hi[start_rows]).astype(np.int64) + popcount_u64(
        mask_lo[start_rows]
    ).astype(np.int64)
    counts = {
        "1": int(lengths[bits == 1].sum()),
        "2": int(lengths[bits == 2].sum()),
        ">2": int(lengths[bits > 2].sum()),
    }
    return {key: value / total for key, value in counts.items()}


# -- precision ----------------------------------------------------------------


def precision_losses_frame(frame: RecordFrame, dtype: DataType) -> np.ndarray:
    """Columnar :func:`repro.analysis.precision.precision_losses`.

    Returns the loss column for rows of ``dtype`` in record order; the
    doubles are bit-identical to the scalar per-record computation.
    """
    if not dtype.is_numeric:
        raise ConfigurationError(f"{dtype} has no precision-loss semantics")
    return frame.precision_loss[frame.rows_for_dtype(dtype)]


def empirical_cdf_frame(losses: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Columnar :func:`repro.analysis.precision.empirical_cdf`:
    (sorted values, cumulative fractions) as arrays."""
    if losses.size == 0:
        return np.empty(0), np.empty(0)
    ordered = np.sort(losses)
    return ordered, np.arange(1, losses.size + 1) / losses.size


def summarize_precision_frame(
    frame: RecordFrame, dtype: DataType
) -> PrecisionSummary:
    """Columnar :func:`repro.analysis.precision.summarize_precision`."""
    losses = precision_losses_frame(frame, dtype)
    if losses.size == 0:
        return PrecisionSummary(dtype, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = np.sort(losses)
    n = int(losses.size)

    def quantile(q: float) -> float:
        return float(ordered[min(int(q * n), n - 1)])

    def below(threshold: float) -> float:
        return int(np.count_nonzero(losses < threshold)) / n

    return PrecisionSummary(
        dtype=dtype,
        count=n,
        median=quantile(0.5),
        p999=quantile(0.999),
        max=float(ordered[-1]),
        below_0002pct=below(0.002 / 100.0),
        below_002pct=below(0.02 / 100.0),
        below_5pct=below(5.0 / 100.0),
        above_100pct=int(np.count_nonzero(losses > 100.0 / 100.0)) / n,
    )


# -- spill-to-disk (out-of-core analytics) ------------------------------------

#: RecordFrame array fields, in canonical column order for persistence.
_RECORD_COLUMNS: Tuple[str, ...] = (
    "expected_lo",
    "expected_hi",
    "actual_lo",
    "actual_hi",
    "mask_lo",
    "mask_hi",
    "dtype_code",
    "setting_code",
    "processor_code",
    "testcase_code",
    "precision_loss",
)


def save_record_frame(frame: RecordFrame, directory, obs=None) -> int:
    """Spill a :class:`RecordFrame` through :mod:`repro.colstore`.

    Columns land one ``.npy`` per field under a CRC-checked manifest;
    the code tables travel in the manifest's meta.  Returns bytes
    written.
    """
    from ..colstore import write_columns

    meta = {
        "kind": "record-frame",
        "settings": [list(key) for key in frame.settings],
        "processors": list(frame.processors),
        "testcases": list(frame.testcases),
    }
    columns = {name: getattr(frame, name) for name in _RECORD_COLUMNS}
    return write_columns(directory, columns, meta=meta, obs=obs)


def load_record_frame(
    directory, mmap: bool = True, verify: bool = False
) -> RecordFrame:
    """Map a spilled :class:`RecordFrame` back (zero-copy by default).

    Kernels run unchanged over the memory-mapped columns, paging only
    the bytes each one touches — figure analytics over millions of
    records never need the corpus resident.
    """
    from ..colstore import read_columns

    columns, meta = read_columns(directory, mmap=mmap, verify=verify)
    missing = [name for name in _RECORD_COLUMNS if name not in columns]
    if missing:
        raise ConfigurationError(
            f"record-frame store {directory} missing columns: {missing}"
        )
    return RecordFrame(
        settings=tuple(
            (str(p), str(t)) for p, t in meta.get("settings", [])
        ),
        processors=tuple(meta.get("processors", [])),
        testcases=tuple(meta.get("testcases", [])),
        **{name: columns[name] for name in _RECORD_COLUMNS},
    )


# -- detection analytics (Tables 1-2 over campaign results) -------------------


@dataclass
class DetectionFrame:
    """Struct-of-arrays view of a campaign's detections.

    A :class:`~repro.fleet.pipeline.FleetStudyResult` holds one
    :class:`~repro.fleet.pipeline.Detection` object per caught CPU; at
    paper scale that is hundreds of thousands of frozen dataclasses.
    This frame lowers them to a few integer/float columns plus string
    code tables (first-appearance order, matching the result's grouped
    dict orders), spills through :mod:`repro.colstore`, and reproduces
    the :mod:`repro.fleet.stats` Table 1/2 rates bit-identically —
    integer count ratios divide to the same doubles.
    """

    population_total: int
    arch_counts: Dict[str, int]
    stage_code: np.ndarray
    arch_code: np.ndarray
    processor_code: np.ndarray
    day: np.ndarray
    #: Ragged failing-testcase lists: row ``i`` owns
    #: ``tc_code[tc_offsets[i]:tc_offsets[i+1]]``.
    tc_offsets: np.ndarray
    tc_code: np.ndarray
    stage_names: Tuple[str, ...]
    arch_names: Tuple[str, ...]
    processor_ids: Tuple[str, ...]
    testcase_ids: Tuple[str, ...]
    undetected_ids: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.stage_code)

    @classmethod
    def from_result(cls, result) -> "DetectionFrame":
        n = len(result.detections)
        stage_code = np.empty(n, np.int16)
        arch_code = np.empty(n, np.int16)
        processor_code = np.empty(n, np.int32)
        day = np.empty(n, np.float64)
        tc_offsets = np.empty(n + 1, np.int64)
        tc_flat: List[int] = []
        stages: Dict[str, int] = {}
        archs: Dict[str, int] = {}
        processors: Dict[str, int] = {}
        testcases: Dict[str, int] = {}

        def code_of(table: Dict[str, int], name: str) -> int:
            code = table.get(name)
            if code is None:
                code = len(table)
                table[name] = code
            return code

        tc_offsets[0] = 0
        for row, detection in enumerate(result.detections):
            stage_code[row] = code_of(stages, detection.stage_name)
            arch_code[row] = code_of(archs, detection.arch_name)
            processor_code[row] = code_of(processors, detection.processor_id)
            day[row] = detection.day
            tc_flat.extend(
                code_of(testcases, tc)
                for tc in detection.failing_testcase_ids
            )
            tc_offsets[row + 1] = len(tc_flat)
        return cls(
            population_total=result.population_total,
            arch_counts=dict(result.arch_counts),
            stage_code=stage_code,
            arch_code=arch_code,
            processor_code=processor_code,
            day=day,
            tc_offsets=tc_offsets,
            tc_code=np.asarray(tc_flat, dtype=np.int32),
            stage_names=tuple(stages),
            arch_names=tuple(archs),
            processor_ids=tuple(processors),
            testcase_ids=tuple(testcases),
            undetected_ids=tuple(result.undetected_ids),
        )

    def to_result(self):
        """Rebuild the exact :class:`~repro.fleet.pipeline.FleetStudyResult`.

        Round-trip identity (``from_result(r).to_result() == r``) is
        what lets a campaign spill its detections and still hand later
        stages objects indistinguishable from the in-memory run's.
        """
        from ..fleet.pipeline import Detection, FleetStudyResult

        result = FleetStudyResult(
            population_total=self.population_total,
            arch_counts=dict(self.arch_counts),
            undetected_ids=list(self.undetected_ids),
        )
        for row in range(len(self)):
            lo = int(self.tc_offsets[row])
            hi = int(self.tc_offsets[row + 1])
            result.detections.append(
                Detection(
                    processor_id=self.processor_ids[
                        int(self.processor_code[row])
                    ],
                    arch_name=self.arch_names[int(self.arch_code[row])],
                    stage_name=self.stage_names[int(self.stage_code[row])],
                    day=float(self.day[row]),
                    failing_testcase_ids=tuple(
                        self.testcase_ids[int(code)]
                        for code in self.tc_code[lo:hi]
                    ),
                )
            )
        return result

    # -- Table 1/2 kernels (bit-parity with repro.fleet.stats) ---------------

    def overall_failure_rate(self) -> float:
        return len(self) / self.population_total

    def timing_failure_rates(self) -> Dict[str, float]:
        """Columnar :func:`repro.fleet.stats.timing_failure_rates`."""
        counts = np.bincount(self.stage_code, minlength=len(self.stage_names))
        rates = {
            stage: int(counts[code]) / self.population_total
            for code, stage in enumerate(self.stage_names)
        }
        rates["total"] = self.overall_failure_rate()
        return rates

    def arch_failure_rates(self) -> Dict[str, float]:
        """Columnar :func:`repro.fleet.stats.arch_failure_rates`."""
        counts = np.bincount(self.arch_code, minlength=len(self.arch_names))
        by_arch = {
            arch: int(counts[code])
            for code, arch in enumerate(self.arch_names)
        }
        return {
            arch: by_arch.get(arch, 0) / count
            for arch, count in self.arch_counts.items()
            if count > 0
        }

    def failing_testcases(self) -> set:
        """Columnar :meth:`FleetStudyResult.failing_testcases`."""
        return {self.testcase_ids[int(code)] for code in np.unique(self.tc_code)}

    # -- persistence ---------------------------------------------------------

    def save(self, directory, obs=None) -> int:
        from ..colstore import write_columns

        meta = {
            "kind": "detection-frame",
            "population_total": self.population_total,
            "arch_counts": dict(self.arch_counts),
            "stage_names": list(self.stage_names),
            "arch_names": list(self.arch_names),
            "processor_ids": list(self.processor_ids),
            "testcase_ids": list(self.testcase_ids),
            "undetected_ids": list(self.undetected_ids),
        }
        columns = {
            "stage_code": self.stage_code,
            "arch_code": self.arch_code,
            "processor_code": self.processor_code,
            "day": self.day,
            "tc_offsets": self.tc_offsets,
            "tc_code": self.tc_code,
        }
        return write_columns(directory, columns, meta=meta, obs=obs)

    @classmethod
    def load(
        cls, directory, mmap: bool = True, verify: bool = False
    ) -> "DetectionFrame":
        from ..colstore import read_columns

        columns, meta = read_columns(directory, mmap=mmap, verify=verify)
        return cls(
            population_total=int(meta["population_total"]),
            arch_counts={k: int(v) for k, v in meta["arch_counts"].items()},
            stage_code=columns["stage_code"],
            arch_code=columns["arch_code"],
            processor_code=columns["processor_code"],
            day=columns["day"],
            tc_offsets=columns["tc_offsets"],
            tc_code=columns["tc_code"],
            stage_names=tuple(meta["stage_names"]),
            arch_names=tuple(meta["arch_names"]),
            processor_ids=tuple(meta["processor_ids"]),
            testcase_ids=tuple(meta["testcase_ids"]),
            undetected_ids=tuple(meta["undetected_ids"]),
        )
