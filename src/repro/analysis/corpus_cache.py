"""On-disk cache of materialized SDC-record corpora.

The §2.4 catalog corpus ("more than ten thousand SDC records") is
deterministic — the same catalog, library, and run parameters always
produce the same :class:`~repro.testing.records.RecordStore` — yet
materializing it walks 27 processors × 633 testcases through the
toolchain.  Figure benchmarks and the columnar speedup harness each
re-derive it, so this module memoizes the store on disk:

* the cache **key** is a SHA-256 fingerprint of everything the corpus
  depends on — run parameters plus descriptors of every processor
  (arch, defects, instructions, affected cores) and every testcase id —
  so any change to the catalog or library changes the file name rather
  than serving stale records;
* the cache **file** reuses the campaign checkpoint format
  (:func:`repro.resilience.checkpoint.write_checkpoint`): canonical-JSON
  payload, CRC-32 self-check, atomic temp-file + ``os.replace`` write.
  A torn or bit-rotted cache file fails its self-check and the corpus
  is recomputed — the cache can be slow, never wrong;
* records round-trip exactly: Python ints carry the 80-bit FLOAT64X
  patterns without truncation, and JSON floats use shortest-repr
  encoding, so the reloaded store compares equal field for field.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional

from ..cpu.features import DataType
from ..cpu.processor import Processor
from ..errors import CheckpointError
from ..resilience.checkpoint import read_checkpoint, write_checkpoint
from ..testing.library import TestcaseLibrary
from ..testing.records import ConsistencyRecord, RecordStore, SDCRecord
from .columnar import RecordFrame, load_record_frame, save_record_frame
from .observations import build_catalog_corpus

__all__ = [
    "corpus_fingerprint",
    "save_corpus",
    "load_corpus",
    "CorpusCache",
]

_RECORD_FIELDS = (
    "processor_id",
    "testcase_id",
    "pcore_id",
    "defect_id",
    "instruction",
    "dtype",
    "expected_bits",
    "actual_bits",
    "temperature_c",
    "time_s",
)

_CONSISTENCY_FIELDS = (
    "processor_id",
    "testcase_id",
    "pcore_id",
    "defect_id",
    "kind",
    "temperature_c",
    "time_s",
)


def corpus_fingerprint(
    catalog: Dict[str, Processor],
    library: TestcaseLibrary,
    **parameters: object,
) -> str:
    """Content key for a corpus materialization.

    Covers the catalog's observable generator inputs (processor ids,
    architectures, defect ids, defective instructions, affected cores),
    the library's testcase ids, and any keyword run parameters (seed,
    temperature, duration).  Two materializations with the same
    fingerprint produce the same records.
    """
    descriptor = {
        "parameters": {k: repr(v) for k, v in sorted(parameters.items())},
        "processors": [
            {
                "id": processor.processor_id,
                "arch": processor.arch.name,
                "defects": [
                    {
                        "id": defect.defect_id,
                        "instructions": list(defect.instructions),
                        "cores": list(defect.core_ids),
                        "datatypes": [d.name for d in defect.datatypes],
                    }
                    for defect in processor.defects
                ],
            }
            for processor in catalog.values()
        ],
        "testcases": [testcase.testcase_id for testcase in library],
    }
    canonical = json.dumps(
        descriptor, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()[:20]


def save_corpus(path: os.PathLike, store: RecordStore) -> None:
    """Atomically persist a record store as a self-checking snapshot."""
    payload = {
        "records": [
            [
                record.processor_id,
                record.testcase_id,
                record.pcore_id,
                record.defect_id,
                record.instruction,
                record.dtype.name,
                record.expected_bits,
                record.actual_bits,
                record.temperature_c,
                record.time_s,
            ]
            for record in store.records
        ],
        "consistency": [
            [
                record.processor_id,
                record.testcase_id,
                record.pcore_id,
                record.defect_id,
                record.kind,
                record.temperature_c,
                record.time_s,
            ]
            for record in store.consistency_records
        ],
    }
    write_checkpoint(path, payload)


def load_corpus(path: os.PathLike) -> RecordStore:
    """Load a store saved by :func:`save_corpus`.

    Raises the checkpoint layer's errors (missing file, torn write,
    CRC mismatch, version skew) — callers fall back to recomputing.
    """
    payload = read_checkpoint(path)
    store = RecordStore()
    for row in payload.get("records", []):
        fields = dict(zip(_RECORD_FIELDS, row))
        fields["dtype"] = DataType[fields["dtype"]]
        store.add(SDCRecord(**fields))
    for row in payload.get("consistency", []):
        store.add_consistency(
            ConsistencyRecord(**dict(zip(_CONSISTENCY_FIELDS, row)))
        )
    return store


class CorpusCache:
    """A directory of fingerprint-keyed corpus snapshots."""

    _PREFIX = "corpus-"
    _SUFFIX = ".ckpt"

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Whether the last :meth:`get_or_build` call was served from
        #: disk — observable for tests and benchmark reporting.
        self.last_hit: Optional[bool] = None
        # Fingerprint memo: hashing walks every processor descriptor and
        # testcase id (O(catalog)); repeat lookups of the same live
        # objects are the overwhelmingly common case (every figure
        # benchmark re-keys the same corpus), so memoize on object
        # identity + parameters.  The pin list keeps the keyed objects
        # alive so a recycled ``id()`` can never alias a stale entry.
        self._fingerprints: Dict[tuple, str] = {}
        self._pins: list = []

    def fingerprint(
        self,
        catalog: Dict[str, Processor],
        library: TestcaseLibrary,
        **parameters: object,
    ) -> str:
        """Memoized :func:`corpus_fingerprint` — O(1) on repeat lookups."""
        key = (
            id(catalog),
            id(library),
            tuple((k, repr(v)) for k, v in sorted(parameters.items())),
        )
        cached = self._fingerprints.get(key)
        if cached is None:
            cached = corpus_fingerprint(catalog, library, **parameters)
            self._fingerprints[key] = cached
            self._pins.append((catalog, library))
        return cached

    def path_for(self, key: str) -> Path:
        return self.directory / f"{self._PREFIX}{key}{self._SUFFIX}"

    def frame_path_for(self, key: str) -> Path:
        return self.directory / f"frame-{key}"

    def get_or_build(
        self, key: str, builder: Callable[[], RecordStore]
    ) -> RecordStore:
        """The cached store for ``key``, building (and saving) on miss.

        Any unreadable cache file — absent, torn mid-write, failing its
        CRC self-check, or from an incompatible format version — is
        treated as a miss and overwritten with a fresh materialization,
        so a damaged cache changes timing, never results.
        """
        path = self.path_for(key)
        try:
            store = load_corpus(path)
        except CheckpointError:
            pass
        else:
            self.last_hit = True
            return store
        self.last_hit = False
        store = builder()
        try:
            save_corpus(path, store)
        except CheckpointError:  # pragma: no cover - read-only cache dir
            pass
        return store

    def frame_for(
        self,
        key: str,
        builder: Callable[[], RecordStore],
        mmap: bool = True,
        obs=None,
    ) -> RecordFrame:
        """The columnar frame for ``key``, memory-mapped on hit.

        The out-of-core analytics path: a hit maps the spilled column
        files read-only (O(columns) validation, no record decoding at
        all); a miss materializes the store via ``builder`` (through the
        corpus cache, so the raw records are also reusable), lowers it
        once, and spills the frame beside the corpus snapshot.
        """
        directory = self.frame_path_for(key)
        try:
            frame = load_record_frame(directory, mmap=mmap)
        except CheckpointError:
            pass
        else:
            self.last_hit = True
            return frame
        store = self.get_or_build(key, builder)
        self.last_hit = False
        frame = RecordFrame.from_store(store)
        try:
            save_record_frame(frame, directory, obs=obs)
        except CheckpointError:  # pragma: no cover - read-only cache dir
            pass
        return frame

    def catalog_corpus(
        self,
        catalog: Dict[str, Processor],
        library: TestcaseLibrary,
        temperature_c: float = 78.0,
        duration_s: float = 900.0,
        builder: Optional[Callable[[], RecordStore]] = None,
    ) -> RecordStore:
        """Cached :func:`repro.analysis.observations.build_catalog_corpus`.

        ``builder`` overrides *how* a miss is materialized (e.g. the
        benchmark suite's process-parallel builder); the result is
        identical either way, which is exactly what the fingerprint key
        asserts.
        """
        key = self.fingerprint(
            catalog,
            library,
            temperature_c=temperature_c,
            duration_s=duration_s,
        )
        if builder is None:
            builder = lambda: build_catalog_corpus(  # noqa: E731
                catalog, library, temperature_c, duration_s
            )
        return self.get_or_build(key, builder)
