"""Programmatic re-derivation of the paper's 12 observations.

Each observation becomes a checkable :class:`ObservationResult` with
the measured evidence and a pass/fail verdict against the paper's
qualitative claim.  ``check_all_observations`` runs the full set on a
fleet campaign plus the catalog corpus — the artifact a reproduction
ships so a reviewer can confirm every claim in one call::

    report = check_all_observations(fleet, campaign, catalog, library)
    for result in report:
        print(result.summary())
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cpu.features import DataType, VULNERABLE_FEATURES
from ..cpu.processor import Processor
from ..fleet import stats
from ..fleet.pipeline import FleetStudyResult, PipelineConfig
from ..fleet.population import FleetPopulation
from ..testing.library import TestcaseLibrary
from ..testing.records import RecordStore
from ..testing.runner import ToolchainRunner
from ..units import permyriad
from .bitflips import bitflip_histogram, flip_count_distribution
from .correlation import pearson_r
from .precision import precision_losses
from .reproducibility import catalog_setting_survey

__all__ = ["ObservationResult", "check_all_observations", "build_catalog_corpus"]


@dataclass
class ObservationResult:
    """One observation's verdict and evidence."""

    number: int
    claim: str
    holds: bool
    evidence: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        status = "HOLDS" if self.holds else "DEVIATES"
        details = ", ".join(f"{k}={v}" for k, v in self.evidence.items())
        return f"Obs {self.number:>2} [{status}] {self.claim} ({details})"


def build_catalog_corpus(
    catalog: Dict[str, Processor],
    library: TestcaseLibrary,
    temperature_c: float = 78.0,
    duration_s: float = 900.0,
) -> RecordStore:
    """Generous hot runs over the study catalog — the §2.4 corpus."""
    store = RecordStore()
    for processor in catalog.values():
        runner = ToolchainRunner(processor)
        for testcase in library:
            if runner.can_ever_fail(testcase):
                runner.run_at_fixed_temperature(
                    testcase, temperature_c, duration_s, store=store
                )
    return store


def check_all_observations(
    fleet: FleetPopulation,
    campaign: FleetStudyResult,
    catalog: Dict[str, Processor],
    library: TestcaseLibrary,
    corpus: Optional[RecordStore] = None,
) -> List[ObservationResult]:
    """Re-derive Observations 1-11 (12 is detector-level, see
    :mod:`repro.detectors.evaluate`) and return their verdicts."""
    if corpus is None:
        corpus = build_catalog_corpus(catalog, library)
    results: List[ObservationResult] = []

    # Obs 1: overall failure rate, a few permyriad.
    rate = permyriad(stats.overall_failure_rate(campaign))
    results.append(
        ObservationResult(
            1,
            "a few permyriad of CPUs cause SDCs",
            0.5 < rate < 10.0,
            {"rate_permyriad": round(rate, 3), "paper": 3.61},
        )
    )

    # Obs 2: pre-production testing catches most faulty CPUs.
    pre = stats.pre_production_fraction(
        campaign, PipelineConfig().pre_production_stage_names()
    )
    results.append(
        ObservationResult(
            2,
            "pre-production testing catches ~90% of faulty CPUs",
            pre > 0.75,
            {"pre_production_share": round(pre, 3), "paper": 0.9036},
        )
    )

    # Obs 3: all architectures affected, no improvement with generation.
    # Scale-aware: only architectures whose *expected* faulty count in
    # this fleet is at least ~2 must show detections (a low-incidence
    # arch like M4 at 0.082 permyriad has <1 expected faulty CPU even in
    # sizable samples).
    from ..cpu.catalog import PAPER_ARCH_FAILURE_RATES_PERMYRIAD
    from ..units import from_permyriad

    arch_rates = stats.arch_failure_rates(campaign)
    must_show = [
        arch
        for arch, count in campaign.arch_counts.items()
        if count * from_permyriad(PAPER_ARCH_FAILURE_RATES_PERMYRIAD[arch])
        >= 2.0
    ]
    affected = sum(1 for r in arch_rates.values() if r > 0)
    expected_affected = sum(1 for arch in must_show if arch_rates[arch] > 0)
    newest_not_best = max(
        arch_rates["M7"], arch_rates["M8"], arch_rates["M9"]
    ) > min(arch_rates["M1"], arch_rates["M2"], arch_rates["M3"])
    results.append(
        ObservationResult(
            3,
            "SDCs across (nearly) all micro-architectures, no generation trend",
            expected_affected >= len(must_show) - 1 and newest_not_best,
            {
                "architectures_affected": affected,
                "expected_to_show": len(must_show),
            },
        )
    )

    # Obs 4: single-core vs all-core split near half.
    single = stats.single_core_fraction(campaign, fleet)
    results.append(
        ObservationResult(
            4,
            "about half the faulty CPUs have a single defective core",
            0.3 < single < 0.7,
            {"single_core_fraction": round(single, 3)},
        )
    )

    # Obs 5: the five vulnerable features, one SDC type per CPU.
    features = stats.feature_proportions(campaign, fleet)
    types_consistent = all(
        len({d.sdc_type for d in p.defects}) == 1 for p in catalog.values()
    )
    results.append(
        ObservationResult(
            5,
            "five vulnerable features; multi-feature defects share one type",
            all(features.get(f, 0) > 0 for f in VULNERABLE_FEATURES)
            and types_consistent,
            {str(k): round(v, 3) for k, v in features.items()},
        )
    )

    # Obs 6: all datatypes affected, floats most.
    datatypes = stats.datatype_proportions(campaign, fleet)
    float_top = max(
        datatypes.get(DataType.FLOAT32, 0), datatypes.get(DataType.FLOAT64, 0)
    )
    non_float_top = max(
        (v for k, v in datatypes.items() if not k.is_float), default=0.0
    )
    results.append(
        ObservationResult(
            6,
            "all datatypes affected; floating point most",
            len(datatypes) >= 6 and float_top >= 0.8 * non_float_top,
            {"datatypes_affected": len(datatypes)},
        )
    )

    # Obs 7: fraction-biased flips, small float losses, large int losses.
    histogram = bitflip_histogram(corpus.records, DataType.FLOAT64)
    f64_losses = [
        l for l in precision_losses(corpus.records, DataType.FLOAT64)
        if math.isfinite(l)
    ]
    small = (
        sum(1 for l in f64_losses if l < 2e-4) / len(f64_losses)
        if f64_losses
        else 0.0
    )
    results.append(
        ObservationResult(
            7,
            "float flips hit the fraction; losses are minor",
            histogram.msb_flip_fraction(8) < 0.05 and small > 0.9,
            {
                "msb_flip_share": round(histogram.msb_flip_fraction(8), 4),
                "f64_losses_below_0.02pct": round(small, 4),
            },
        )
    )

    # Obs 8: bitflip patterns with multi-bit flips.
    distribution = flip_count_distribution(
        corpus, DataType.FLOAT64, pattern_only=False
    )
    results.append(
        ObservationResult(
            8,
            "fixed-position bitflip patterns; multi-bit flips occur",
            distribution["1"] > 0.6
            and distribution["2"] + distribution[">2"] > 0.01,
            {k: round(v, 3) for k, v in distribution.items()},
        )
    )

    # Obs 9: occurrence frequencies span orders of magnitude.
    survey = catalog_setting_survey(list(catalog.values()), library)
    freqs = [p.log10_freq_at_tmin for p in survey]
    spread = max(freqs) - min(freqs) if freqs else 0.0
    results.append(
        ObservationResult(
            9,
            "reproducibility spans orders of magnitude across settings",
            spread > 2.0,
            {"settings": len(survey), "log10_spread": round(spread, 2)},
        )
    )

    # Obs 10: frequency anti-correlates with minimum trigger temperature
    # (the Figure-9 face of the temperature observation; the per-setting
    # exponential fits live in the Figure-8 benchmark).
    r = (
        pearson_r(
            [p.tmin_c for p in survey],
            [p.log10_freq_at_tmin for p in survey],
        )
        if len(survey) >= 3
        else 0.0
    )
    results.append(
        ObservationResult(
            10,
            "temperature governs triggering; freq anti-correlates with tmin",
            r < -0.4,
            {"pearson_r": round(r, 3), "paper": -0.8272},
        )
    )

    # Obs 11: most testcases never detect anything.
    ineffective = stats.ineffective_testcase_count(campaign, len(library))
    results.append(
        ObservationResult(
            11,
            "the vast majority of testcases detect nothing in production",
            ineffective > 0.72 * len(library),
            {"ineffective": ineffective, "of": len(library), "paper": 560},
        )
    )
    return results
