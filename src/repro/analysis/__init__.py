"""Measurement and analysis machinery of the study (§3-§5)."""

from .correlation import LinearFit, linear_fit, pearson_r
from .bitflips import (
    PATTERN_THRESHOLD,
    BitflipHistogram,
    bitflip_histogram,
    flip_count_distribution,
    flip_direction_fraction,
    pattern_proportion,
    pattern_proportions_by_setting,
    setting_patterns,
)
from .precision import (
    PrecisionSummary,
    empirical_cdf,
    fraction_above,
    fraction_below,
    log10_losses,
    precision_losses,
    summarize_precision,
)
from .reproducibility import (
    FrequencyMeasurement,
    SettingReproducibility,
    TemperatureSweep,
    catalog_setting_survey,
    measure_frequency,
    temperature_sweep,
)
from .observations import (
    ObservationResult,
    build_catalog_corpus,
    check_all_observations,
)
from .report import render_histogram, render_series, render_table, side_by_side

__all__ = [
    "LinearFit",
    "linear_fit",
    "pearson_r",
    "PATTERN_THRESHOLD",
    "BitflipHistogram",
    "bitflip_histogram",
    "flip_count_distribution",
    "flip_direction_fraction",
    "pattern_proportion",
    "pattern_proportions_by_setting",
    "setting_patterns",
    "PrecisionSummary",
    "empirical_cdf",
    "fraction_above",
    "fraction_below",
    "log10_losses",
    "precision_losses",
    "summarize_precision",
    "FrequencyMeasurement",
    "SettingReproducibility",
    "TemperatureSweep",
    "catalog_setting_survey",
    "measure_frequency",
    "temperature_sweep",
    "ObservationResult",
    "build_catalog_corpus",
    "check_all_observations",
    "render_histogram",
    "render_series",
    "render_table",
    "side_by_side",
]
