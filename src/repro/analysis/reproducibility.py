"""Reproducibility analysis (§5, Figures 8-9).

Occurrence frequency — errors per minute of a setting — is measured by
repeatedly running the failed testcase, exactly as the study does.  The
temperature sweep pins the core temperature (preheating when the
setting cannot reach it naturally) and measures the frequency at each
point; a least-squares line through ``log10(frequency)`` vs temperature
gives the Figure-8 fits, and the scatter of frequency-at-minimum-
triggering-temperature vs that temperature gives Figure 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..cpu.processor import Processor
from ..faults.trigger import TriggerModel
from ..testing.library import TestcaseLibrary
from ..testing.runner import ToolchainRunner
from ..testing.testcase import Testcase
from .correlation import LinearFit, linear_fit

__all__ = [
    "FrequencyMeasurement",
    "TemperatureSweep",
    "measure_frequency",
    "temperature_sweep",
    "SettingReproducibility",
    "catalog_setting_survey",
]


@dataclass(frozen=True)
class FrequencyMeasurement:
    """One measured occurrence frequency at one temperature."""

    temperature_c: float
    errors: int
    duration_s: float

    @property
    def frequency_per_min(self) -> float:
        return self.errors / (self.duration_s / 60.0)

    @property
    def log10_frequency(self) -> Optional[float]:
        freq = self.frequency_per_min
        return math.log10(freq) if freq > 0 else None


@dataclass
class TemperatureSweep:
    """A Figure-8 style sweep for one setting."""

    processor_id: str
    testcase_id: str
    pcore_id: int
    measurements: List[FrequencyMeasurement] = field(default_factory=list)

    def nonzero(self) -> List[FrequencyMeasurement]:
        return [m for m in self.measurements if m.errors > 0]

    def fit(self) -> Optional[LinearFit]:
        """Least-squares fit of log10(frequency) against temperature."""
        points = [
            (m.temperature_c, m.log10_frequency)
            for m in self.nonzero()
        ]
        if len(points) < 3:
            return None
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        if len(set(xs)) < 2:
            return None
        return linear_fit(xs, ys)

    def observed_min_trigger_temp(self) -> Optional[float]:
        """Lowest temperature at which errors were observed."""
        nonzero = self.nonzero()
        if not nonzero:
            return None
        return min(m.temperature_c for m in nonzero)


def measure_frequency(
    runner: ToolchainRunner,
    testcase: Testcase,
    temperature_c: float,
    duration_s: float = 600.0,
    pcore_id: int = 0,
) -> FrequencyMeasurement:
    """Measure one setting's frequency at a pinned temperature."""
    run = runner.run_at_fixed_temperature(
        testcase, temperature_c, duration_s, cores=[pcore_id]
    )
    return FrequencyMeasurement(
        temperature_c=temperature_c,
        errors=run.error_count,
        duration_s=duration_s,
    )


def temperature_sweep(
    runner: ToolchainRunner,
    testcase: Testcase,
    temperatures: Sequence[float],
    duration_s: float = 600.0,
    pcore_id: int = 0,
) -> TemperatureSweep:
    """Sweep a setting over pinned temperatures (Figure 8's method)."""
    if not temperatures:
        raise ConfigurationError("need at least one temperature")
    sweep = TemperatureSweep(
        processor_id=runner.processor.processor_id,
        testcase_id=testcase.testcase_id,
        pcore_id=pcore_id,
    )
    for temperature in temperatures:
        sweep.measurements.append(
            measure_frequency(
                runner, testcase, temperature, duration_s, pcore_id
            )
        )
    return sweep


@dataclass(frozen=True)
class SettingReproducibility:
    """One point of Figure 9: a setting's tmin and frequency there."""

    processor_id: str
    testcase_id: str
    tmin_c: float
    log10_freq_at_tmin: float

    @property
    def apparent(self) -> bool:
        """The paper's apparent/tricky split (§5): apparent SDCs are
        detectable near idle temperature with high frequency."""
        return self.tmin_c <= 52.0 and self.log10_freq_at_tmin >= -0.5


def catalog_setting_survey(
    processors: Sequence[Processor],
    library: TestcaseLibrary,
    trigger: Optional[TriggerModel] = None,
    max_settings_per_processor: int = 4,
) -> List[SettingReproducibility]:
    """Resolve (tmin, frequency-at-tmin) for failing settings (Fig. 9).

    Uses the trigger model's per-setting behaviour — the quantity the
    study estimates empirically by long runs just above/below threshold
    temperatures — for a bounded number of settings per processor, like
    the paper's per-CPU experiment budget.
    """
    trigger = trigger or TriggerModel()
    points: List[SettingReproducibility] = []
    for processor in processors:
        runner = ToolchainRunner(processor, trigger_model=trigger)
        taken = 0
        for testcase in library:
            if taken >= max_settings_per_processor:
                break
            matched = False
            usage = 0.0
            for defect in processor.defects:
                if defect.is_consistency:
                    continue
                for mnemonic in defect.instructions:
                    if testcase.uses_instruction(mnemonic):
                        candidate = testcase.usage_per_s(mnemonic)
                        # Survey tight-loop settings only: the study's
                        # frequency measurements repeat the *failed*
                        # testcase, which saturates the defective
                        # instruction; diluted settings would fold
                        # usage stress into the Figure-9 scatter.
                        if candidate >= 0.5 * trigger.reference_usage:
                            matched = True
                            usage = max(usage, candidate)
                if matched:
                    behaviour = trigger.behaviour(
                        defect, testcase.testcase_id
                    )
                    stress = (
                        usage / trigger.reference_usage
                    ) ** behaviour.stress_exponent
                    log10_freq = behaviour.log10_freq_at_tmin + math.log10(
                        max(stress, 1e-12)
                    )
                    points.append(
                        SettingReproducibility(
                            processor_id=processor.processor_id,
                            testcase_id=testcase.testcase_id,
                            tmin_c=behaviour.tmin_c,
                            log10_freq_at_tmin=log10_freq,
                        )
                    )
                    taken += 1
                    break
    return points
