"""Resilient fleet-campaign execution: shards, snapshots, degradation.

:class:`ResilientCampaign` wraps the scalar
:class:`~repro.fleet.pipeline.TestPipeline` and the vectorized
:class:`~repro.fleet.vectorized.VectorizedTestPipeline` behind one
supervised loop that a production deployment could actually run for 32
months:

* the faulty population is processed in **shards** (contiguous CPU
  ranges) so there is a natural retry/degradation/checkpoint boundary;
* after every ``checkpoint_every`` shards the full campaign state —
  stage cursor, partial detections, and the **exact draw position** of
  the pipeline's Bernoulli substream — is snapshotted through
  :mod:`repro.resilience.checkpoint`;
* a shard that fails transiently is retried with exponential backoff;
  a shard whose vectorized parity self-check trips is **degraded** to
  the scalar engine (whose output is the ground truth by construction);
* every fault, retry, degradation, and snapshot lands in a
  :class:`~repro.resilience.health.CampaignHealthReport`.

Because both engines consume the same counted stream and checkpoints
record its exact position, a campaign that crashes, resumes, retries,
and degrades produces a :class:`~repro.fleet.pipeline.FleetStudyResult`
**bit-identical** to an uninterrupted run at the same seed — the
invariant the chaos suite (``tests/chaos/``) enforces.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields as dataclass_fields
from typing import Dict, Optional, Tuple

from ..core.backoff import ExponentialBackoff
from ..obs.context import observed_sleep, span
from ..obs.procmem import record_memory
from ..errors import (
    CampaignAbortedError,
    ConfigurationError,
    ParityDegradedError,
    TransientWorkerError,
)
from ..fleet.parallel import ParallelTestPipeline
from ..fleet.pipeline import Detection, FleetStudyResult, PipelineConfig
from ..fleet.population import FleetPopulation, FleetSpec, generate_fleet
from ..fleet.vectorized import VectorizedTestPipeline
from ..testing.library import TestcaseLibrary
from .chaos import ChaosInjector, InjectedKillError
from .checkpoint import CheckpointStore
from .health import (
    KIND_CHECKPOINT,
    KIND_DEGRADATION,
    KIND_RESUME,
    KIND_RETRY,
    CampaignHealthReport,
)

__all__ = ["CampaignSpec", "ResilientCampaign", "run_resilient_campaign"]

ENGINES = ("scalar", "vectorized", "parallel")


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to rebuild a campaign in a fresh process.

    Checkpoints embed this spec, so ``repro resume <dir>`` can
    regenerate the identical population and library without the caller
    re-supplying them.
    """

    total_processors: int
    fleet_seed: int = 1
    pipeline_seed: int = 11
    failure_rate_scale: float = 1.0
    escape_fraction: float = 0.05
    engine: str = "vectorized"
    shard_size: int = 256
    #: Out-of-core bound: 0 materializes the whole faulty population
    #: eagerly (the classic path); > 0 builds a frame-backed population
    #: whose resident Processor window never exceeds this many CPUs.
    max_resident_cpus: int = 0

    def __post_init__(self) -> None:
        if self.total_processors <= 0:
            raise ConfigurationError("total_processors must be positive")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.shard_size <= 0:
            raise ConfigurationError("shard_size must be positive")
        if self.max_resident_cpus < 0:
            raise ConfigurationError("max_resident_cpus must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_processors": self.total_processors,
            "fleet_seed": self.fleet_seed,
            "pipeline_seed": self.pipeline_seed,
            "failure_rate_scale": self.failure_rate_scale,
            "escape_fraction": self.escape_fraction,
            "engine": self.engine,
            "shard_size": self.shard_size,
            "max_resident_cpus": self.max_resident_cpus,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        """Build a spec from checkpoint data, tolerating older payloads.

        Fields absent from ``data`` fall back to their dataclass
        defaults, so checkpoints written before a field existed still
        resume (the default is, by construction, the behaviour those
        campaigns had).  Required fields stay required.
        """
        kwargs: Dict[str, object] = {}
        for spec_field in dataclass_fields(cls):
            if spec_field.name in data:
                kwargs[spec_field.name] = data[spec_field.name]
            elif (
                spec_field.default is MISSING
                and spec_field.default_factory is MISSING
            ):
                raise ConfigurationError(
                    f"campaign spec is missing field {spec_field.name!r}"
                )
        return cls(**kwargs)

    def build_population(self, obs=None) -> FleetPopulation:
        fleet_spec = FleetSpec(
            total_processors=self.total_processors,
            seed=self.fleet_seed,
            failure_rate_scale=self.failure_rate_scale,
            escape_fraction=self.escape_fraction,
        )
        if self.max_resident_cpus > 0:
            # Imported lazily: repro.resilience initializes before the
            # fleet frame module in some import orders, and only
            # out-of-core campaigns need it.
            from ..fleet.frame import generate_fleet_frame

            return generate_fleet_frame(
                fleet_spec,
                chunk_size=self.max_resident_cpus,
                window=self.max_resident_cpus,
                obs=obs,
            )
        return generate_fleet(fleet_spec)


class ResilientCampaign:
    """One supervised, checkpointed, degradable fleet campaign."""

    def __init__(
        self,
        population: FleetPopulation,
        library: TestcaseLibrary,
        *,
        spec: Optional[CampaignSpec] = None,
        config: Optional[PipelineConfig] = None,
        seed: int = 11,
        engine: str = "vectorized",
        shard_size: int = 256,
        workers: Optional[int] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_every: int = 1,
        chaos: Optional[ChaosInjector] = None,
        health: Optional[CampaignHealthReport] = None,
        max_shard_retries: int = 3,
        retry_backoff: Optional[ExponentialBackoff] = None,
        verify_parity: bool = False,
        obs=None,
    ):
        if engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if shard_size <= 0:
            raise ConfigurationError("shard_size must be positive")
        if workers is not None and workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if checkpoint_every <= 0:
            raise ConfigurationError("checkpoint_every must be positive")
        if max_shard_retries < 0:
            raise ConfigurationError("max_shard_retries must be >= 0")
        self.population = population
        self.library = library
        self.spec = spec
        self.engine = engine
        self.shard_size = shard_size
        self.workers = workers
        self.store = checkpoint_store
        self.checkpoint_every = checkpoint_every
        self.chaos = chaos
        self.health = health if health is not None else CampaignHealthReport()
        if chaos is not None and chaos.health is None:
            chaos.health = self.health
        self.obs = obs
        if obs is not None:
            # Bridge health and chaos into the telemetry stream: every
            # event they record is also counted and traced.
            self.health.observer = obs
            if chaos is not None:
                chaos.obs = obs
        self.max_shard_retries = max_shard_retries
        self.retry_backoff = retry_backoff or ExponentialBackoff(
            base_s=0.05, cap_s=1.0, seed=seed
        )
        self.verify_parity = verify_parity
        # One vectorized engine; its embedded scalar engine shares the
        # counted pipeline stream, so either can execute any shard.
        self._vectorized = VectorizedTestPipeline(
            population, library, config, None, seed, obs=obs
        )
        self._scalar = self._vectorized._scalar
        self._stream = self._scalar._stream
        # The parallel engine wraps the same vectorized engine (same
        # stream, same lowering cache); built lazily so scalar and
        # vectorized campaigns never construct a pool.
        self._parallel: Optional[ParallelTestPipeline] = None
        self._cursor = 0
        self._shards_since_checkpoint = 0
        self.result = FleetStudyResult(
            population_total=population.total,
            arch_counts=dict(population.arch_counts),
        )

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_spec(cls, spec: CampaignSpec, library: TestcaseLibrary, **kwargs):
        kwargs.setdefault("engine", spec.engine)
        kwargs.setdefault("shard_size", spec.shard_size)
        return cls(
            spec.build_population(),
            library,
            spec=spec,
            seed=spec.pipeline_seed,
            **kwargs,
        )

    @classmethod
    def resume(
        cls,
        store: CheckpointStore,
        library: TestcaseLibrary,
        *,
        population: Optional[FleetPopulation] = None,
        spec: Optional[CampaignSpec] = None,
        health: Optional[CampaignHealthReport] = None,
        **kwargs,
    ) -> "ResilientCampaign":
        """Rebuild a campaign from the newest usable snapshot.

        ``population`` short-circuits fleet regeneration when the
        caller still holds it (in-process supervisor restarts); the CLI
        path rebuilds everything from the embedded spec.  Raises
        :class:`ConfigurationError` when no usable snapshot exists.
        """
        probe_health = health if health is not None else CampaignHealthReport()
        payload = store.load_latest(probe_health)
        if payload is None:
            raise ConfigurationError(
                f"no usable checkpoint in {store.directory}"
            )
        saved_spec = payload.get("spec")
        if spec is None and saved_spec is not None:
            spec = CampaignSpec.from_dict(saved_spec)  # type: ignore[arg-type]
        if spec is not None and saved_spec is not None:
            # Normalize through from_dict().to_dict() so a checkpoint
            # written before a (defaulted) spec field existed still
            # compares equal to the equivalent modern spec.
            normalized = CampaignSpec.from_dict(
                saved_spec  # type: ignore[arg-type]
            ).to_dict()
            if spec.to_dict() != normalized:
                raise ConfigurationError(
                    "checkpoint was written by a campaign with a different "
                    f"spec: {normalized!r} != {spec.to_dict()!r}"
                )
        if population is None:
            if spec is None:
                raise ConfigurationError(
                    "checkpoint embeds no spec; pass population= explicitly"
                )
            population = spec.build_population()
        if health is None:
            # Cross-process resume: the snapshot carries the history.
            probe_fallbacks = probe_health.events
            probe_health = CampaignHealthReport.from_dict(
                payload.get("health", {"events": []})  # type: ignore[arg-type]
            )
            probe_health.events.extend(probe_fallbacks)
        if spec is not None:
            kwargs.setdefault("engine", spec.engine)
            kwargs.setdefault("shard_size", spec.shard_size)
            kwargs.setdefault("seed", spec.pipeline_seed)
        campaign = cls(
            population,
            library,
            spec=spec,
            checkpoint_store=store,
            health=probe_health,
            **kwargs,
        )
        campaign._restore(payload)
        return campaign

    def _restore(self, payload: Dict[str, object]) -> None:
        faulty_count = len(self.population.faulty)
        cursor = payload.get("cursor")
        draws = payload.get("draws")
        if (
            not isinstance(cursor, int)
            or not isinstance(draws, int)
            or not 0 <= cursor <= faulty_count
            or draws < 0
        ):
            raise ConfigurationError(
                f"checkpoint cursor/draws {cursor!r}/{draws!r} do not fit a "
                f"population of {faulty_count} faulty CPUs"
            )
        if payload.get("population_total") != self.population.total:
            raise ConfigurationError(
                "checkpoint was written for a different population "
                f"({payload.get('population_total')!r} processors, have "
                f"{self.population.total})"
            )
        self._cursor = cursor
        self._stream.reset_to(draws)
        if self.obs is not None:
            self.obs.inc("repro_checkpoint_total", op="load")
        self.result.detections = [
            Detection.from_row(row) for row in payload.get("detections", [])
        ]
        self.result.undetected_ids = list(payload.get("undetected", []))
        self.health.record(
            KIND_RESUME,
            f"resumed at cursor {cursor} ({draws} draws consumed)",
            shard=cursor // self.shard_size,
        )

    # -- checkpointing ------------------------------------------------------

    def _payload(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "cursor": self._cursor,
            "draws": self._stream.consumed,
            "population_total": self.population.total,
            "arch_counts": dict(self.population.arch_counts),
            "detections": [d.to_row() for d in self.result.detections],
            "undetected": list(self.result.undetected_ids),
            "health": self.health.to_dict(),
        }

    def _checkpoint(self, shard: int) -> None:
        if self.store is None:
            return
        self.health.record(
            KIND_CHECKPOINT,
            f"cursor {self._cursor}, {self._stream.consumed} draws",
            shard=shard,
        )
        with span(
            self.obs, "checkpoint.save",
            shard=shard, cursor=self._cursor, draws=self._stream.consumed,
        ):
            path = self.store.save(self._payload())
        if self.obs is not None:
            self.obs.inc("repro_checkpoint_total", op="save")
        if self.chaos is not None:
            self.chaos.damage_checkpoint(path, shard)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the parallel pool and any shared-memory segment.

        Idempotent, and a no-op for scalar/vectorized campaigns that
        never built a pool.  Must run even when the campaign dies
        mid-run (the supervisor driver guarantees it), so an injected
        kill can never leak a published fleet segment.
        """
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "ResilientCampaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ----------------------------------------------------------

    @property
    def cursor(self) -> int:
        return self._cursor

    @property
    def done(self) -> bool:
        return self._cursor >= len(self.population.faulty)

    @property
    def remaining(self) -> int:
        """Faulty CPUs not yet executed (the core governor's input)."""
        return max(0, len(self.population.faulty) - self._cursor)

    @property
    def parallel_degraded(self) -> bool:
        """True once the parallel engine's pool broke and retired.

        Later shards silently rerun on the in-process vectorized engine
        (identical output); a supervising host reads this to stop
        leasing cores to a campaign that can no longer use them.
        """
        return self._parallel is not None and self._parallel.degraded

    def worker_pids(self) -> list:
        """Live pool worker PIDs (empty for in-process campaigns)."""
        if self._parallel is None:
            return []
        return self._parallel.worker_pids()

    def set_workers(self, workers: int) -> None:
        """Re-target the parallel fan-out width at a shard boundary.

        Safe between any two :meth:`step` calls: the pool is respawned
        lazily, the published shared-memory segment survives, and the
        draw-position discipline is untouched — worker count never
        changes results, only wall-clock.
        """
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if workers == self.workers:
            return
        self.workers = workers
        if self._parallel is not None:
            self._parallel.set_workers(workers)

    def _shard_result(self) -> FleetStudyResult:
        return FleetStudyResult(
            population_total=self.population.total,
            arch_counts=dict(self.population.arch_counts),
        )

    def _ensure_parallel(self) -> ParallelTestPipeline:
        if self._parallel is None:
            self._parallel = ParallelTestPipeline.from_vectorized(
                self._vectorized,
                workers=self.workers,
                health=self.health,
            )
        return self._parallel

    def _run_shard_once(
        self, start: int, stop: int, engine: str
    ) -> FleetStudyResult:
        shard_result = self._shard_result()
        if engine == "parallel":
            self._ensure_parallel().run_range(start, stop, shard_result)
        elif engine == "vectorized":
            self._vectorized.run_range(start, stop, shard_result)
        else:
            self._scalar.run_range(start, stop, shard_result)
        return shard_result

    def _execute_shard(self, start: int, stop: int, shard: int) -> FleetStudyResult:
        """One shard through the retry/degradation ladder.

        Any attempt starts by repositioning the stream at the shard's
        draw offset, so retries and engine switches replay the exact
        draw sequence an uninterrupted run would have consumed.
        """
        draws_at_start = self._stream.consumed
        engine = self.engine
        attempt = 0
        while True:
            self._stream.reset_to(draws_at_start)
            try:
                with span(
                    self.obs, "campaign.shard",
                    shard=shard, start=start, stop=stop,
                    engine=engine, attempt=attempt,
                ):
                    if self.chaos is not None:
                        self.chaos.on_shard_start(shard)
                    shard_result = self._run_shard_once(start, stop, engine)
                    if engine != "scalar":
                        self._self_check_parity(
                            start, stop, shard, draws_at_start, shard_result
                        )
                return shard_result
            except ParityDegradedError as error:
                # Ground truth is the scalar engine; degrade this shard.
                self.health.record(
                    KIND_DEGRADATION,
                    f"{engine} -> scalar: {error}",
                    shard=shard,
                )
                engine = "scalar"
            except TransientWorkerError as error:
                attempt += 1
                if attempt > self.max_shard_retries:
                    raise CampaignAbortedError(
                        f"shard {shard} failed {attempt} times; giving up: "
                        f"{error}"
                    ) from error
                delay = self.retry_backoff.delay_s(attempt, f"shard-{shard}")
                self.health.record(
                    KIND_RETRY,
                    f"attempt {attempt} after {error} (backoff {delay:.3f}s)",
                    shard=shard,
                )
                if self.obs is not None:
                    self.obs.inc("repro_retry_total", scope="shard")
                observed_sleep(self.obs, delay, "shard_retry")

    def _self_check_parity(
        self,
        start: int,
        stop: int,
        shard: int,
        draws_at_start: int,
        shard_result: FleetStudyResult,
    ) -> None:
        """Raise :class:`ParityDegradedError` when the shard's vectorized
        output cannot be trusted (real divergence, or chaos says so)."""
        tripped = self.chaos is not None and self.chaos.parity_trip(shard)
        if not tripped and not self.verify_parity:
            return
        if not tripped:
            self._stream.reset_to(draws_at_start)
            # The reference rerun is a *check*, not campaign work:
            # counting it would double the shard in the per-engine
            # totals, so telemetry is suspended for its duration.
            saved_obs = self._scalar.obs
            self._scalar.obs = None
            try:
                reference = self._run_shard_once(start, stop, "scalar")
            finally:
                self._scalar.obs = saved_obs
            if (
                reference.detections == shard_result.detections
                and reference.undetected_ids == shard_result.undetected_ids
            ):
                return
        raise ParityDegradedError(
            f"parity self-check tripped on shard {shard} "
            f"(cpus [{start}, {stop}))"
        )

    def step(self) -> bool:
        """Execute exactly one shard through the retry/degradation
        ladder and apply the checkpoint policy; returns True while
        faulty CPUs remain.

        This is the granule a long-running host (the ``repro serve``
        scheduler) interleaves with drain checks: between any two steps
        the campaign can be checkpointed with :meth:`checkpoint_now`
        and abandoned, and a later resume is bit-identical.
        """
        faulty_count = len(self.population.faulty)
        if self._cursor >= faulty_count:
            return False
        start = self._cursor
        stop = min(start + self.shard_size, faulty_count)
        shard = start // self.shard_size
        shard_result = self._execute_shard(start, stop, shard)
        self.result.detections.extend(shard_result.detections)
        self.result.undetected_ids.extend(shard_result.undetected_ids)
        self._cursor = stop
        self._shards_since_checkpoint += 1
        if (
            self._shards_since_checkpoint >= self.checkpoint_every
            or self._cursor >= faulty_count
        ):
            self._checkpoint(shard)
            self._shards_since_checkpoint = 0
        if self.chaos is not None:
            self.chaos.kill_after_shard(shard)
        return self._cursor < faulty_count

    def checkpoint_now(self) -> None:
        """Snapshot immediately if any shard landed since the last one.

        The graceful-drain path: a daemon stopping mid-campaign
        checkpoints the exact cursor/draw position so the next boot
        resumes without redoing (or double-counting) any shard.  A
        no-op when the newest snapshot is already current or no store
        is attached.
        """
        if self.store is None or self._shards_since_checkpoint == 0:
            return
        self._checkpoint(max(0, (self._cursor - 1) // self.shard_size))
        self._shards_since_checkpoint = 0

    def run(self) -> FleetStudyResult:
        """Run to completion, checkpointing; returns the study result.

        Injected kills propagate as :class:`InjectedKillError` — the
        :func:`run_resilient_campaign` driver (or an operator running
        ``repro resume``) restarts from the last good snapshot.
        """
        with span(
            self.obs, "campaign.run",
            engine=self.engine, cursor=self._cursor,
            faulty=len(self.population.faulty),
        ):
            while self.step():
                pass
            # Final RSS stamp so one-shot CLI runs leave their peak on
            # record.  This is *not* the memory time series: under the
            # daemon, the scrape loop samples RSS every interval
            # (ReproService._scrape_tick), so /timeseries history has
            # real resolution instead of one point per campaign.
            record_memory(self.obs)
        return self.result


def run_resilient_campaign(
    library: TestcaseLibrary,
    *,
    spec: Optional[CampaignSpec] = None,
    population: Optional[FleetPopulation] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    chaos: Optional[ChaosInjector] = None,
    health: Optional[CampaignHealthReport] = None,
    max_restarts: int = 8,
    **campaign_kwargs,
) -> Tuple[FleetStudyResult, CampaignHealthReport]:
    """Supervisor driver: run a campaign, restarting across kills.

    Mirrors the production deployment shape — a daemon that respawns a
    crashed scanner and points it at the newest snapshot.  Needs either
    ``spec`` (population regenerated deterministically) or an explicit
    ``population``.
    """
    if spec is None and population is None:
        raise ConfigurationError(
            "run_resilient_campaign needs spec= or population="
        )
    health = health if health is not None else CampaignHealthReport()
    if population is None:
        population = spec.build_population()
    restarts = 0
    while True:
        if checkpoint_store is not None and checkpoint_store.load_latest() is not None:
            campaign = ResilientCampaign.resume(
                checkpoint_store,
                library,
                population=population,
                spec=spec,
                health=health,
                chaos=chaos,
                **campaign_kwargs,
            )
        else:
            kwargs = dict(campaign_kwargs)
            if spec is not None:
                kwargs.setdefault("engine", spec.engine)
                kwargs.setdefault("shard_size", spec.shard_size)
                kwargs.setdefault("seed", spec.pipeline_seed)
            campaign = ResilientCampaign(
                population,
                library,
                spec=spec,
                checkpoint_store=checkpoint_store,
                health=health,
                chaos=chaos,
                **kwargs,
            )
        try:
            return campaign.run(), health
        except InjectedKillError as error:
            restarts += 1
            if restarts > max_restarts:
                raise CampaignAbortedError(
                    f"campaign killed {restarts} times; giving up"
                ) from error
            if checkpoint_store is None:
                raise CampaignAbortedError(
                    "campaign killed with no checkpoint store to resume from"
                ) from error
        finally:
            # Pool processes and shared-memory segments must not outlive
            # the campaign instance, however it ended — a real
            # supervisor would be reaping a dead scanner's resources
            # here.
            campaign.close()
