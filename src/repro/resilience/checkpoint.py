"""Versioned, self-checking campaign checkpoints.

A month-scale campaign must survive the process that runs it.  The
snapshot format here is deliberately boring and auditable:

* **JSON payload** — every value the campaign needs to continue
  (cursor, draw-stream position, partial detections) round-trips
  exactly: CPython's ``repr`` serialization of floats is shortest
  round-trip, so ``Detection.day`` survives bit-for-bit.
* **CRC self-check** — the payload's canonical encoding is CRC-32
  checksummed; a torn write, truncation, or flipped byte surfaces as
  :class:`~repro.errors.CheckpointCorruptError` instead of silently
  corrupting the aggregate result.
* **Atomic write** — snapshots are written to a temp file, fsynced,
  ``os.replace``-d into place, and the parent directory is fsynced, so
  a crash mid-write leaves the previous snapshot intact and a crash
  right after the write cannot un-happen it.
* **Rotation** — :class:`CheckpointStore` keeps the last few snapshots;
  the loader falls back to the newest one that passes its self-check.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
)
from ..fsutil import replace_and_sync_directory
from .health import KIND_CHECKPOINT_FALLBACK, CampaignHealthReport

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "write_checkpoint",
    "read_checkpoint",
    "CheckpointStore",
]

CHECKPOINT_FORMAT = "repro-campaign-checkpoint"
CHECKPOINT_VERSION = 1


def _canonical(payload: Dict[str, object]) -> bytes:
    """Canonical payload bytes: the CRC domain.

    ``sort_keys`` + tight separators make the encoding independent of
    dict insertion order, and JSON's repr-based float encoding makes it
    independent of everything else.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def write_checkpoint(path: os.PathLike, payload: Dict[str, object]) -> None:
    """Atomically write ``payload`` as a self-checking snapshot."""
    path = Path(path)
    body = _canonical(payload)
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "crc32": zlib.crc32(body),
        "payload": payload,
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, allow_nan=False)
            handle.flush()
            os.fsync(handle.fileno())
        # The rename is only durable once the parent directory's entry
        # is on disk too — a crash between replace and directory sync
        # could otherwise "lose" a snapshot the caller already trusts.
        replace_and_sync_directory(tmp, path)
    except OSError as error:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise CheckpointError(f"cannot write checkpoint {path}: {error}") from error


def read_checkpoint(path: os.PathLike) -> Dict[str, object]:
    """Read and verify one snapshot, returning its payload.

    Raises :class:`CheckpointCorruptError` for anything that fails the
    structure or CRC self-check and :class:`CheckpointVersionError` for
    snapshots from an incompatible format version.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    try:
        document = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        # Bit rot can break the UTF-8 encoding itself, not just the
        # JSON structure; both read as corruption, not as a crash.
        raise CheckpointCorruptError(
            f"checkpoint {path} is not valid JSON (torn write?): {error}"
        ) from error
    if not isinstance(document, dict) or document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointCorruptError(
            f"checkpoint {path} lacks the {CHECKPOINT_FORMAT!r} header"
        )
    version = document.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"checkpoint {path} has format version {version!r}; this build "
            f"reads version {CHECKPOINT_VERSION}"
        )
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointCorruptError(f"checkpoint {path} has no payload object")
    crc = zlib.crc32(_canonical(payload))
    if crc != document.get("crc32"):
        raise CheckpointCorruptError(
            f"checkpoint {path} failed its CRC self-check "
            f"(stored {document.get('crc32')!r}, computed {crc})"
        )
    return payload


class CheckpointStore:
    """A rotating directory of numbered snapshots.

    ``campaign-000001.ckpt``, ``campaign-000002.ckpt``, … — newest wins,
    the loader falls back across corrupt snapshots, and old snapshots
    beyond ``keep`` are pruned after each successful save.
    """

    _PREFIX = "campaign-"
    _SUFFIX = ".ckpt"

    def __init__(self, directory: os.PathLike, keep: int = 2):
        if keep < 1:
            raise CheckpointError("CheckpointStore must keep at least 1 snapshot")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    def paths(self) -> List[Path]:
        """Existing snapshot paths, oldest first."""
        entries = [
            path
            for path in self.directory.glob(f"{self._PREFIX}*{self._SUFFIX}")
            if path.is_file()
        ]
        return sorted(entries, key=lambda path: path.name)

    def _next_path(self) -> Path:
        existing = self.paths()
        if existing:
            last = existing[-1].name[len(self._PREFIX):-len(self._SUFFIX)]
            try:
                index = int(last) + 1
            except ValueError:
                index = len(existing) + 1
        else:
            index = 1
        return self.directory / f"{self._PREFIX}{index:06d}{self._SUFFIX}"

    def save(self, payload: Dict[str, object]) -> Path:
        path = self._next_path()
        write_checkpoint(path, payload)
        for stale in self.paths()[:-self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass
        return path

    def load_latest(
        self, health: Optional[CampaignHealthReport] = None
    ) -> Optional[Dict[str, object]]:
        """Payload of the newest snapshot that passes its self-check.

        Corrupt snapshots are skipped (recorded into ``health``), which
        is what makes a torn final write survivable: the previous
        rotation still restores the campaign, at the cost of redoing
        one checkpoint interval of work.  Returns None when no usable
        snapshot exists.
        """
        for path in reversed(self.paths()):
            try:
                return read_checkpoint(path)
            except (CheckpointCorruptError, CheckpointVersionError) as error:
                if health is not None:
                    health.record(
                        KIND_CHECKPOINT_FALLBACK,
                        f"skipped {path.name}: {error}",
                    )
        return None
