"""Resilient campaign execution: checkpoint/resume, supervision, chaos.

The fleet engines in :mod:`repro.fleet` compute; this package keeps
them alive for month-scale campaigns on unreliable infrastructure —
periodic self-checking snapshots, deterministic resume, retry with
backoff, vectorized→scalar degradation, and a seeded chaos injector
that proves all of it preserves bit-identical results.
"""

from .campaign import CampaignSpec, ResilientCampaign, run_resilient_campaign
from .chaos import FAULT_KINDS, ChaosInjector, InjectedKillError
from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointStore,
    read_checkpoint,
    write_checkpoint,
)
from .health import CampaignHealthReport, HealthEvent

__all__ = [
    "CampaignSpec",
    "ResilientCampaign",
    "run_resilient_campaign",
    "FAULT_KINDS",
    "ChaosInjector",
    "InjectedKillError",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "read_checkpoint",
    "write_checkpoint",
    "CampaignHealthReport",
    "HealthEvent",
]
