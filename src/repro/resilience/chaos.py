"""Chaos self-injection: faults for the *harness itself*.

The paper's campaigns model unreliable silicon; production experience
(Meta's *Silent Data Corruptions at Scale*, Google's SiliFuzz) says the
test infrastructure is unreliable too.  This module injects that second
kind of fault — scanner crashes, flaky workers, torn snapshot writes —
on a **seeded, deterministic schedule**, so the chaos suite can prove
that a campaign survives every injected fault with a bit-identical
final result.

Fault kinds, keyed by shard index:

* ``"exception"`` — the shard raises a transient error on its first
  attempt (a flaking worker); the campaign retries it with backoff.
* ``"delay"`` — the shard stalls briefly (a slow host); nothing should
  change but wall-clock time.
* ``"kill"`` — the campaign process "dies" right after the shard (an
  OOM-killed scanner); the supervisor driver must resume from the last
  good checkpoint.
* ``"parity_trip"`` — the vectorized engine's parity self-check reports
  a mismatch; the campaign must degrade that shard to the scalar engine.
* ``"torn_checkpoint"`` — the snapshot written after the shard is
  truncated mid-file (power loss during write).
* ``"corrupt_byte"`` — one byte of that snapshot is flipped (bit rot).

Each scheduled fault fires **once**: a resumed campaign re-executing the
same shard must not re-die, exactly like a real crash that does not
reproduce.  Keep one injector instance per supervised run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ResilienceError, TransientWorkerError
from ..obs.context import observed_sleep
from ..rng import substream
from .health import KIND_FAULT, CampaignHealthReport

__all__ = [
    "FAULT_KINDS",
    "InjectedKillError",
    "ChaosInjector",
]

FAULT_KINDS = (
    "exception",
    "delay",
    "kill",
    "parity_trip",
    "torn_checkpoint",
    "corrupt_byte",
)


class InjectedKillError(ResilienceError):
    """The chaos schedule killed the campaign process (simulated)."""


class ChaosInjector:
    """Fires scheduled harness faults at campaign hook points."""

    def __init__(
        self,
        schedule: Mapping[int, Sequence[str]],
        seed: int = 0,
        delay_s: float = 0.01,
    ):
        for shard, kinds in schedule.items():
            for kind in kinds:
                if kind not in FAULT_KINDS:
                    raise ValueError(
                        f"unknown chaos fault {kind!r} for shard {shard}; "
                        f"known kinds: {FAULT_KINDS}"
                    )
        self.schedule: Dict[int, Tuple[str, ...]] = {
            int(shard): tuple(kinds) for shard, kinds in schedule.items()
        }
        self.delay_s = delay_s
        self._rng = substream(seed, "chaos")
        self._fired: Set[Tuple[int, str]] = set()
        self.health: Optional[CampaignHealthReport] = None
        #: Optional :class:`repro.obs.Observability`: every injected
        #: fault is counted and traced the instant it fires, and delay
        #: faults sleep through :func:`repro.obs.observed_sleep` instead
        #: of a silent ``time.sleep``.
        self.obs = None

    @classmethod
    def seeded(
        cls,
        seed: int,
        shard_count: int,
        rate: float = 0.15,
        kinds: Iterable[str] = FAULT_KINDS,
    ) -> "ChaosInjector":
        """A random schedule: each (shard, kind) fires with ``rate``.

        Deterministic in ``seed`` — the same seed always builds the same
        schedule, which is what lets CI run a fixed seed matrix.
        """
        rng = substream(seed, "chaos", "schedule")
        schedule: Dict[int, List[str]] = {}
        for shard in range(shard_count):
            for kind in kinds:
                if rng.random() < rate:
                    schedule.setdefault(shard, []).append(kind)
        return cls(schedule, seed=seed)

    # -- hook points --------------------------------------------------------

    def _take(self, shard: int, kind: str) -> bool:
        """True if ``kind`` is scheduled for ``shard`` and unfired."""
        if kind not in self.schedule.get(shard, ()) or (shard, kind) in self._fired:
            return False
        self._fired.add((shard, kind))
        if self.obs is not None:
            self.obs.inc("repro_chaos_faults_total", kind=kind)
            self.obs.tracer.event(f"chaos.{kind}", shard=shard)
        if self.health is not None:
            self.health.record(KIND_FAULT, f"injected {kind}", shard=shard)
        return True

    def on_shard_start(self, shard: int) -> None:
        """Worker-side faults: flaky exception, slow host."""
        if self._take(shard, "delay"):
            observed_sleep(self.obs, self.delay_s, "chaos_delay")
        if self._take(shard, "exception"):
            raise TransientWorkerError(
                f"chaos: injected worker exception on shard {shard}",
                item_index=shard,
            )

    def parity_trip(self, shard: int) -> bool:
        """Whether the parity self-check must report a mismatch."""
        return self._take(shard, "parity_trip")

    def kill_after_shard(self, shard: int) -> None:
        """Simulated process death; the driver resumes from checkpoint."""
        if self._take(shard, "kill"):
            raise InjectedKillError(
                f"chaos: campaign killed after shard {shard}"
            )

    def damage_checkpoint(self, path: os.PathLike, shard: int) -> List[str]:
        """Tear and/or bit-rot the snapshot just written.

        Both kinds can be scheduled for one shard and then apply to the
        same write (a torn, bit-rotted file is still just a corrupt
        file); returns the kinds applied.
        """
        path = Path(path)
        applied: List[str] = []
        if self._take(shard, "torn_checkpoint"):
            data = path.read_bytes()
            cut = max(1, int(len(data) * float(self._rng.uniform(0.2, 0.8))))
            path.write_bytes(data[:cut])
            applied.append("torn_checkpoint")
        if self._take(shard, "corrupt_byte"):
            data = bytearray(path.read_bytes())
            index = int(self._rng.integers(len(data)))
            data[index] ^= 1 << int(self._rng.integers(8))
            path.write_bytes(bytes(data))
            applied.append("corrupt_byte")
        return applied

    # -- bookkeeping --------------------------------------------------------

    @property
    def fired(self) -> Set[Tuple[int, str]]:
        return set(self._fired)

    def pending(self) -> Dict[int, Tuple[str, ...]]:
        """Scheduled faults that have not fired yet."""
        out: Dict[int, Tuple[str, ...]] = {}
        for shard, kinds in self.schedule.items():
            left = tuple(k for k in kinds if (shard, k) not in self._fired)
            if left:
                out[shard] = left
        return out
