"""Structured campaign health accounting.

Production fleet scanners (Meta's at-scale SDC screens, Google's
SiliFuzz) treat the test infrastructure itself as unreliable: hosts
flake, scanners crash, runs resume.  What keeps partial results
trustworthy is a structured audit trail — every fault seen, every retry
taken, every degradation of the execution strategy — attached to the
campaign result instead of scattered through logs.

:class:`CampaignHealthReport` is that trail.  The resilient campaign
layer, the supervised parallel map, and the chaos suite all append
:class:`HealthEvent` records to one report; it serializes into the
checkpoint payload so a resumed run keeps the full history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["HealthEvent", "CampaignHealthReport"]


#: Event kinds recorded by the resilience layer.  Kept as plain strings
#: (not an enum) so new layers can record domain-specific kinds without
#: touching this module; these are the ones the core layer emits.
KIND_FAULT = "fault"  #: a fault was observed or injected
KIND_RETRY = "retry"  #: a shard/worker item was retried
KIND_DEGRADATION = "degradation"  #: execution strategy was lowered
KIND_CHECKPOINT = "checkpoint"  #: a snapshot was written
KIND_CHECKPOINT_FALLBACK = "checkpoint_fallback"  #: a corrupt snapshot was skipped
KIND_RESUME = "resume"  #: a campaign continued from a snapshot


@dataclass(frozen=True)
class HealthEvent:
    """One resilience-relevant occurrence during a campaign."""

    kind: str
    detail: str
    #: Shard index for campaign events, item index for worker events.
    shard: Optional[int] = None
    item: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "shard": self.shard,
            "item": self.item,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HealthEvent":
        return cls(
            kind=str(data["kind"]),
            detail=str(data["detail"]),
            shard=data.get("shard"),  # type: ignore[arg-type]
            item=data.get("item"),  # type: ignore[arg-type]
        )


@dataclass
class CampaignHealthReport:
    """Everything that went wrong — and what was done about it."""

    events: List[HealthEvent] = field(default_factory=list)

    #: Optional telemetry bridge (class attribute, not a dataclass
    #: field: it never serializes into checkpoints).  Anything with an
    #: ``on_health_event(event)`` method — in practice
    #: :class:`repro.obs.Observability` — sees every event the moment
    #: it is recorded, so checkpointed health and emitted telemetry
    #: cannot disagree.
    observer = None

    def record(
        self,
        kind: str,
        detail: str,
        *,
        shard: Optional[int] = None,
        item: Optional[int] = None,
    ) -> HealthEvent:
        event = HealthEvent(kind=kind, detail=detail, shard=shard, item=item)
        self.events.append(event)
        if self.observer is not None:
            self.observer.on_health_event(event)
        return event

    # -- queries -----------------------------------------------------------

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def of_kind(self, kind: str) -> List[HealthEvent]:
        return [event for event in self.events if event.kind == kind]

    @property
    def faults(self) -> int:
        return self.count(KIND_FAULT)

    @property
    def retries(self) -> int:
        return self.count(KIND_RETRY)

    @property
    def degradations(self) -> int:
        return self.count(KIND_DEGRADATION)

    @property
    def checkpoints_written(self) -> int:
        return self.count(KIND_CHECKPOINT)

    @property
    def resumes(self) -> int:
        return self.count(KIND_RESUME)

    def summary(self) -> str:
        """One human line per counter, for CLI output."""
        return (
            f"faults={self.faults} retries={self.retries} "
            f"degradations={self.degradations} "
            f"checkpoints={self.checkpoints_written} resumes={self.resumes}"
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignHealthReport":
        events = [
            HealthEvent.from_dict(item)  # type: ignore[arg-type]
            for item in data.get("events", [])  # type: ignore[union-attr]
        ]
        return cls(events=events)
