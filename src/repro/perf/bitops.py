"""Batched bit-level primitives shared by the columnar fast paths.

Both the columnar record analytics (:mod:`repro.analysis.columnar`) and
the batched detector kernels (:mod:`repro.detectors.batch`) count set
bits over whole uint64 columns; this module holds the one
implementation they share.
"""

from __future__ import annotations

import numpy as np

__all__ = ["popcount_u64"]


if hasattr(np, "bitwise_count"):

    def popcount_u64(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - NumPy < 2.0 fallback

    def popcount_u64(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (SWAR fallback)."""
        v = np.array(words, dtype=np.uint64, copy=True)
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        v -= (v >> np.uint64(1)) & m1
        v = (v & m2) + ((v >> np.uint64(2)) & m2)
        v = (v + (v >> np.uint64(4))) & m4
        return ((v * h01) >> np.uint64(56)).astype(np.uint8)
