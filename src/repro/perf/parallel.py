"""Deterministic, supervised process-parallel mapping.

Per-CPU toolchain campaigns and coverage experiments are embarrassingly
parallel: each task owns its processor, its runner, and its substream.
:func:`deterministic_map` fans such tasks out over a
``ProcessPoolExecutor`` while keeping the results bit-identical to a
serial run:

* results are collected **in submission order**, so downstream
  aggregation sees the same sequence regardless of worker scheduling;
* tasks never share RNG state — callers seed each task from its index
  (e.g. ``substream(seed, "sweep", str(i))``), so the draw sequence of
  task *i* is independent of how many workers ran it;
* ``workers <= 1`` (or an unavailable ``fork``/pool) falls back to a
  plain serial loop, which is also the cheapest path for small inputs.

On top of the deterministic mapping sits a **supervisor**, because at
fleet scale the harness itself fails: workers are OOM-killed, items
flake, hosts stall.  The supervision ladder is

1. a worker-side failure is re-raised as
   :class:`~repro.errors.TransientWorkerError` carrying the failing
   item's index and repr (never a bare, context-free exception);
2. failed items are retried up to ``retries`` times with
   :class:`~repro.core.backoff.ExponentialBackoff` delays;
3. a broken pool (killed worker) or a per-item timeout degrades the
   remaining work to serial execution in the parent instead of
   crashing the sweep;
4. every fault, retry, and degradation is recorded on the optional
   ``health`` report (:class:`repro.resilience.CampaignHealthReport`).

Retries and degradation never change results: tasks are pure functions
of their payload, so re-running one — in a worker or in the parent —
yields the identical value.

The function accepts a module-level ``fn`` plus picklable task payloads.
An optional ``initializer`` runs once per worker process to build
expensive shared context (testcase libraries, catalogs) instead of
pickling it per task.
"""

from __future__ import annotations

import os
import signal
import sys
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..core.backoff import ExponentialBackoff
from ..errors import TransientWorkerError
from ..obs.context import observed_sleep

__all__ = [
    "default_workers",
    "deterministic_map",
    "DeterministicPool",
    "worker_trace_parent",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Event kinds mirrored from repro.resilience.health (duck-typed here to
#: keep this low-level module import-light).
_KIND_FAULT = "fault"
_KIND_RETRY = "retry"
_KIND_DEGRADATION = "degradation"


def default_workers(task_count: int | None = None) -> int:
    """A sensible worker count: *usable* CPUs, capped by the task count.

    ``os.cpu_count()`` reports the machine, not the process:
    containerized CI commonly pins a job to a CPU subset (cpuset), and
    sizing the pool to the host oversubscribes that allowance into
    context-switch thrash.  The scheduler affinity mask is the honest
    budget where the platform exposes it (Linux); elsewhere fall back to
    the CPU count.
    """
    try:
        workers = len(os.sched_getaffinity(0))
    except AttributeError:  # macOS/Windows: no affinity API
        workers = os.cpu_count() or 1
    if task_count is not None:
        workers = min(workers, task_count)
    return max(1, workers)


def _pool_worker_init(initializer, initargs) -> None:
    """Runs first in every pool worker: sever the signal plumbing
    inherited from the forked parent, then build the caller's context.

    A forked worker inherits the parent's Python signal handlers and,
    when the parent runs an asyncio loop, its ``signal.set_wakeup_fd``
    socket.  Left in place, a SIGTERM aimed at the *worker* (the
    executor delivers exactly that while tearing down a broken pool) is
    swallowed by the inherited no-op handler — the worker refuses to
    die and the executor joins it forever — while the signal byte lands
    in the *parent's* wakeup pipe, telling a serving daemon to drain
    when nobody asked it to.  Workers must own their signal fate:
    default SIGTERM (so teardown kills them), ignore SIGINT (a Ctrl-C
    is the parent's drain decision, not 2·N tracebacks), no wakeup fd.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # non-main thread or closed fd
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Die with the parent.  A worker blocked on the call-queue pipe
    # never sees EOF when the parent is SIGKILLed — every worker holds
    # both pipe ends, so the read blocks forever and each killed daemon
    # would strand its whole pool as orphans on init.  Linux can deliver
    # the parent's death as a signal instead.
    if sys.platform == "linux":
        try:
            import ctypes

            libc = ctypes.CDLL(None, use_errno=True)
            libc.prctl(1, signal.SIGTERM, 0, 0, 0)  # PR_SET_PDEATHSIG
        except (OSError, AttributeError):
            pass
        if os.getppid() == 1:  # parent died before prctl took effect
            os._exit(0)
    if initializer is not None:
        initializer(*initargs)


def _record(health, kind: str, detail: str, item: int | None = None) -> None:
    if health is not None:
        health.record(kind, detail, item=item)


#: Trace context of the task currently running in this worker process:
#: a ``(pid, span)`` ref naming the coordinator span that submitted it,
#: or None.  Set around the task by :func:`_traced_call`; task functions
#: read it via :func:`worker_trace_parent` to parent their spans into
#: the coordinator's trace.
_WORKER_TRACE_PARENT: Tuple[int, int] | None = None


def worker_trace_parent() -> Tuple[int, int] | None:
    """The submitting coordinator's ``(pid, span)`` trace ref, if the
    current task was submitted with one (see :meth:`DeterministicPool.
    submit`); None in serial/degraded execution or untraced runs."""
    return _WORKER_TRACE_PARENT


def _traced_call(payload: Tuple[Tuple[int, int], Callable, Any]) -> Any:
    """Run a task with its coordinator trace ref published.

    Wrapping the payload — instead of shipping the ref through worker
    globals at init time — keeps the ref per *task*: each shard carries
    the span that actually submitted it, so retries and interleaved
    jobs cannot mis-parent.
    """
    global _WORKER_TRACE_PARENT
    ref, fn, item = payload
    _WORKER_TRACE_PARENT = (int(ref[0]), int(ref[1]))
    try:
        return fn(item)
    finally:
        _WORKER_TRACE_PARENT = None


def _chunk_runner(payload: Tuple[Callable, int, Sequence]) -> Tuple:
    """Worker-side chunk loop.

    Failures come back as a value, not a raised exception: exception
    pickling drops ``__cause__`` chains, and a descriptor lets the
    parent pinpoint the failing item while keeping the already-computed
    prefix of the chunk.
    """
    fn, base_index, items = payload
    results: List[Any] = []
    for offset, item in enumerate(items):
        try:
            results.append(fn(item))
        except Exception as error:  # noqa: BLE001 — descriptor, re-raised in parent
            return (
                "err",
                results,
                base_index + offset,
                repr(item),
                f"{type(error).__name__}: {error}",
            )
    return ("ok", results)


def _run_item_supervised(
    fn: Callable[[_T], _R],
    item: _T,
    index: int,
    *,
    retries: int,
    backoff: ExponentialBackoff,
    health,
    failures: int = 0,
    last_error: str = "",
    obs=None,
) -> _R:
    """Run one item in the current process, retrying with backoff.

    ``failures`` counts attempts already burned elsewhere (e.g. in a
    worker process) so the retry budget is global per item.
    """
    while True:
        if failures > 0:
            if failures > retries:
                raise TransientWorkerError(
                    f"task {index} ({last_error}) failed "
                    f"{failures} time(s); retry budget is {retries}",
                    item_index=index,
                    item_repr=repr(item),
                    attempts=failures,
                )
            delay = backoff.delay_s(failures, f"item-{index}")
            _record(
                health,
                _KIND_RETRY,
                f"retry {failures}/{retries} after {last_error} "
                f"(backoff {delay:.3f}s)",
                item=index,
            )
            if obs is not None:
                obs.inc("repro_retry_total", scope="item")
            observed_sleep(obs, delay, "item_retry")
        try:
            return fn(item)
        except Exception as error:  # noqa: BLE001
            failures += 1
            last_error = f"{type(error).__name__}: {error}"
            _record(health, _KIND_FAULT, last_error, item=index)
            if failures > retries:
                raise TransientWorkerError(
                    f"task {index} failed {failures} time(s): {last_error} "
                    f"(item {item!r})",
                    item_index=index,
                    item_repr=repr(item),
                    attempts=failures,
                ) from error


def _serial_map(
    fn: Callable[[_T], _R],
    tasks: Sequence[_T],
    start: int,
    *,
    retries: int,
    backoff: ExponentialBackoff,
    health,
    out: List[_R],
    obs=None,
) -> List[_R]:
    for offset, item in enumerate(tasks):
        out.append(
            _run_item_supervised(
                fn, item, start + offset,
                retries=retries, backoff=backoff, health=health, obs=obs,
            )
        )
    return out


class DeterministicPool:
    """A persistent, supervised deterministic mapper.

    Same result contract as :func:`deterministic_map` — task-order
    results, independent of worker count or scheduling — but the
    process pool and its per-worker ``initializer`` context survive
    across :meth:`map` calls.  Multi-phase dispatch (the parallel fleet
    engine lowers shards in one pass and replays them in a second)
    would otherwise pay worker spawn + context pickling per phase, and
    worker-side caches keyed on the initializer payload could never
    hit.

    The pool is created lazily on the first parallel :meth:`map`.  Any
    failure that makes the pool untrustworthy (creation error, broken
    pool, chunk timeout) degrades *permanently* to serial execution in
    the parent: results stay identical, only wall-clock changes, and a
    flapping pool cannot oscillate.  Close with :meth:`close` or use as
    a context manager.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        initializer: Callable[..., Any] | None = None,
        initargs: Iterable[Any] = (),
        retries: int = 0,
        timeout_s: float | None = None,
        backoff: Optional[ExponentialBackoff] = None,
        health=None,
        obs=None,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers is not None else default_workers()
        self.retries = retries
        self.timeout_s = timeout_s
        self.backoff = backoff or ExponentialBackoff(base_s=0.05, cap_s=2.0)
        self.health = health
        self.obs = obs
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._pool: ProcessPoolExecutor | None = None
        self._degraded_reason: str | None = None
        self._parent_ready = False

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "DeterministicPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(
                wait=wait and self._degraded_reason is None,
                cancel_futures=True,
            )
            self._pool = None

    @property
    def degraded(self) -> bool:
        """Whether the pool has permanently fallen back to serial."""
        return self._degraded_reason is not None

    def worker_pids(self) -> List[int]:
        """PIDs of live pool workers (empty when serial/degraded/lazy).

        Chaos tooling uses this to SIGKILL a real worker process
        mid-shard; operators use it to attribute CPU time.  The list is
        a snapshot — workers the executor is still spawning are missed,
        which callers poll around.
        """
        if self._pool is None:
            return []
        processes = getattr(self._pool, "_processes", None) or {}
        return sorted(
            pid for pid, proc in list(processes.items())
            if proc.is_alive()
        )

    def degrade(self, reason: str) -> None:
        """Permanently retire the worker pool (callers saw it misbehave).

        Outstanding futures are cancelled, the processes are abandoned
        without waiting, and every later :meth:`map`/:meth:`submit` runs
        serially.  Used by streaming callers (:meth:`submit`) that do
        their own failure detection.
        """
        self._degrade(reason)

    def _degrade(self, reason: str) -> None:
        self._degraded_reason = reason
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _ensure_parent_init(self) -> None:
        # Parent-side execution (serial mode, retries, degraded tails)
        # needs the worker context too; build it lazily, at most once.
        if not self._parent_ready:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            self._parent_ready = True

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._degraded_reason is not None:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_worker_init,
                    initargs=(self._initializer, self._initargs),
                )
            except (OSError, PermissionError, ValueError) as error:
                # Sandboxes without /dev/shm or fork support.
                _record(
                    self.health, _KIND_DEGRADATION,
                    f"process pool unavailable "
                    f"({type(error).__name__}: {error}); running serially",
                )
                self._degrade(f"{type(error).__name__}: {error}")
                return None
        return self._pool

    # -- mapping ------------------------------------------------------------

    def submit(
        self,
        fn: Callable[[_T], _R],
        item: _T,
        *,
        trace_parent: Tuple[int, int] | None = None,
    ):
        """Submit one task; a ``Future`` of a chunk outcome, or ``None``.

        The streaming primitive under :meth:`map`, for callers that
        interleave submission with result consumption (the parallel
        fleet engine scans shard *i* while shard *i+1* is still
        lowering).  ``None`` means the pool is serial/degraded and the
        caller should run the task itself.  The future resolves to
        ``("ok", [result])`` or ``("err", [], 0, item_repr, cause)`` —
        never raises from inside the task — but waiting on it can still
        raise ``BrokenProcessPool``/``TimeoutError``, which the caller
        must map to :meth:`degrade` + its own fallback.

        ``trace_parent`` (a :meth:`Tracer.current_ref` tuple) rides
        along with the task and is visible to the task function via
        :func:`worker_trace_parent`, letting worker-side spans join the
        coordinator's trace tree.
        """
        pool = self._ensure_pool()
        if pool is None:
            return None
        if trace_parent is not None:
            fn, item = _traced_call, (trace_parent, fn, item)
        try:
            return pool.submit(_chunk_runner, (fn, 0, [item]))
        except RuntimeError:
            self._degrade("pool rejected submissions")
            return None

    def _serial(self, fn, tasks, start, out):
        self._ensure_parent_init()
        return _serial_map(
            fn, tasks, start,
            retries=self.retries, backoff=self.backoff, health=self.health,
            out=out, obs=self.obs,
        )

    def map(
        self,
        fn: Callable[[_T], _R],
        tasks: Sequence[_T],
        *,
        chunksize: int | None = None,
    ) -> list[_R]:
        """Map ``fn`` over ``tasks``, results in task order.

        Identical supervision ladder to :func:`deterministic_map`:
        worker-side item failures are retried in the parent against a
        per-item budget (surfacing as
        :class:`~repro.errors.TransientWorkerError` when exhausted), and
        a broken pool or chunk timeout degrades the remaining work — and
        every later ``map`` call on this pool — to serial execution.
        """
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 2:
            return self._serial(fn, tasks, 0, [])
        pool = self._ensure_pool()
        if pool is None:
            return self._serial(fn, tasks, 0, [])
        if chunksize is None:
            chunksize = max(1, len(tasks) // (self.workers * 4))
        chunks: List[Tuple[int, List[_T]]] = [
            (start, tasks[start:start + chunksize])
            for start in range(0, len(tasks), chunksize)
        ]
        try:
            futures = [
                pool.submit(_chunk_runner, (fn, start, chunk))
                for start, chunk in chunks
            ]
        except RuntimeError:
            # Pool was closed underneath us (shutdown raced); degrade.
            self._degrade("pool rejected submissions")
            return self._serial(fn, tasks, 0, [])

        results: List[_R] = []
        for chunk_index, (start, chunk) in enumerate(chunks):
            if self._degraded_reason is not None:
                self._serial(fn, chunk, start, results)
                continue
            future = futures[chunk_index]
            chunk_timeout = (
                self.timeout_s * len(chunk)
                if self.timeout_s is not None
                else None
            )
            try:
                outcome = future.result(timeout=chunk_timeout)
            except FutureTimeout:
                reason = f"chunk at {start} exceeded {chunk_timeout:.1f}s"
                _record(
                    self.health, _KIND_FAULT, f"timeout: {reason}", item=start
                )
                _record(
                    self.health, _KIND_DEGRADATION,
                    "pool abandoned after timeout; remaining tasks run "
                    "serially",
                )
                self._degrade(reason)
                self._serial(fn, chunk, start, results)
                continue
            except BrokenProcessPool:
                reason = "process pool broke (worker died)"
                _record(
                    self.health, _KIND_FAULT,
                    f"{reason} while waiting on chunk at {start}",
                    item=start,
                )
                _record(
                    self.health, _KIND_DEGRADATION,
                    "remaining tasks run serially in the parent",
                )
                self._degrade(reason)
                self._serial(fn, chunk, start, results)
                continue
            if outcome[0] == "ok":
                results.extend(outcome[1])
                continue
            # Worker-side item failure: keep the chunk's computed
            # prefix, charge the failure against the item's retry
            # budget, and finish the chunk in the parent.
            _, prefix, fail_index, item_repr, cause = outcome
            results.extend(prefix)
            _record(
                self.health, _KIND_FAULT,
                f"worker failure on task {fail_index} ({item_repr}): {cause}",
                item=fail_index,
            )
            self._ensure_parent_init()
            results.append(
                _run_item_supervised(
                    fn, tasks[fail_index], fail_index,
                    retries=self.retries, backoff=self.backoff,
                    health=self.health,
                    failures=1, last_error=cause, obs=self.obs,
                )
            )
            remainder_start = fail_index + 1
            self._serial(
                fn, tasks[remainder_start:start + len(chunk)],
                remainder_start, results,
            )
        return results


def deterministic_map(
    fn: Callable[[_T], _R],
    tasks: Sequence[_T],
    *,
    workers: int | None = None,
    initializer: Callable[..., Any] | None = None,
    initargs: Iterable[Any] = (),
    chunksize: int | None = None,
    retries: int = 0,
    timeout_s: float | None = None,
    backoff: Optional[ExponentialBackoff] = None,
    health=None,
    obs=None,
) -> list[_R]:
    """Map ``fn`` over ``tasks``, returning results in task order.

    The output is independent of ``workers``: parallelism changes only
    wall-clock time, never the result.  Falls back to a serial loop when
    ``workers`` resolves to 1, when there are at most 2 tasks, or when a
    process pool cannot be created (restricted environments).

    One-shot convenience over :class:`DeterministicPool` (which callers
    with several mapping phases should hold directly to keep workers and
    their initializer context warm).  Supervision (all optional):

    * ``retries`` — per-item retry budget; a worker-side failure counts
      as the first attempt and remaining attempts run in the parent.
      When the budget is exhausted the failure is re-raised as
      :class:`TransientWorkerError` naming the item's index and repr.
    * ``timeout_s`` — per-item time allowance.  A chunk that exceeds
      ``timeout_s × len(chunk)`` is abandoned (its pool is shut down
      without waiting) and the remaining work degrades to serial
      execution; a wedged *function* will still hang the serial pass,
      which is what CI-level global timeouts are for.
    * ``backoff`` — delay schedule between retries (defaults to a
      deterministic ~50 ms-base exponential).
    * ``health`` — a ``CampaignHealthReport`` to receive fault/retry/
      degradation events.
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers(len(tasks))
    workers = max(1, min(workers, len(tasks))) if tasks else 1
    pool = DeterministicPool(
        workers=workers,
        initializer=initializer,
        initargs=initargs,
        retries=retries,
        timeout_s=timeout_s,
        backoff=backoff,
        health=health,
        obs=obs,
    )
    with pool:
        return pool.map(fn, tasks, chunksize=chunksize)
