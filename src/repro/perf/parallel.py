"""Deterministic, supervised process-parallel mapping.

Per-CPU toolchain campaigns and coverage experiments are embarrassingly
parallel: each task owns its processor, its runner, and its substream.
:func:`deterministic_map` fans such tasks out over a
``ProcessPoolExecutor`` while keeping the results bit-identical to a
serial run:

* results are collected **in submission order**, so downstream
  aggregation sees the same sequence regardless of worker scheduling;
* tasks never share RNG state — callers seed each task from its index
  (e.g. ``substream(seed, "sweep", str(i))``), so the draw sequence of
  task *i* is independent of how many workers ran it;
* ``workers <= 1`` (or an unavailable ``fork``/pool) falls back to a
  plain serial loop, which is also the cheapest path for small inputs.

On top of the deterministic mapping sits a **supervisor**, because at
fleet scale the harness itself fails: workers are OOM-killed, items
flake, hosts stall.  The supervision ladder is

1. a worker-side failure is re-raised as
   :class:`~repro.errors.TransientWorkerError` carrying the failing
   item's index and repr (never a bare, context-free exception);
2. failed items are retried up to ``retries`` times with
   :class:`~repro.core.backoff.ExponentialBackoff` delays;
3. a broken pool (killed worker) or a per-item timeout degrades the
   remaining work to serial execution in the parent instead of
   crashing the sweep;
4. every fault, retry, and degradation is recorded on the optional
   ``health`` report (:class:`repro.resilience.CampaignHealthReport`).

Retries and degradation never change results: tasks are pure functions
of their payload, so re-running one — in a worker or in the parent —
yields the identical value.

The function accepts a module-level ``fn`` plus picklable task payloads.
An optional ``initializer`` runs once per worker process to build
expensive shared context (testcase libraries, catalogs) instead of
pickling it per task.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..core.backoff import ExponentialBackoff
from ..errors import TransientWorkerError

__all__ = ["default_workers", "deterministic_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Event kinds mirrored from repro.resilience.health (duck-typed here to
#: keep this low-level module import-light).
_KIND_FAULT = "fault"
_KIND_RETRY = "retry"
_KIND_DEGRADATION = "degradation"


def default_workers(task_count: int | None = None) -> int:
    """A sensible worker count: CPUs, capped by the number of tasks."""
    workers = os.cpu_count() or 1
    if task_count is not None:
        workers = min(workers, task_count)
    return max(1, workers)


def _record(health, kind: str, detail: str, item: int | None = None) -> None:
    if health is not None:
        health.record(kind, detail, item=item)


def _chunk_runner(payload: Tuple[Callable, int, Sequence]) -> Tuple:
    """Worker-side chunk loop.

    Failures come back as a value, not a raised exception: exception
    pickling drops ``__cause__`` chains, and a descriptor lets the
    parent pinpoint the failing item while keeping the already-computed
    prefix of the chunk.
    """
    fn, base_index, items = payload
    results: List[Any] = []
    for offset, item in enumerate(items):
        try:
            results.append(fn(item))
        except Exception as error:  # noqa: BLE001 — descriptor, re-raised in parent
            return (
                "err",
                results,
                base_index + offset,
                repr(item),
                f"{type(error).__name__}: {error}",
            )
    return ("ok", results)


def _run_item_supervised(
    fn: Callable[[_T], _R],
    item: _T,
    index: int,
    *,
    retries: int,
    backoff: ExponentialBackoff,
    health,
    failures: int = 0,
    last_error: str = "",
) -> _R:
    """Run one item in the current process, retrying with backoff.

    ``failures`` counts attempts already burned elsewhere (e.g. in a
    worker process) so the retry budget is global per item.
    """
    while True:
        if failures > 0:
            if failures > retries:
                raise TransientWorkerError(
                    f"task {index} ({last_error}) failed "
                    f"{failures} time(s); retry budget is {retries}",
                    item_index=index,
                    item_repr=repr(item),
                    attempts=failures,
                )
            delay = backoff.delay_s(failures, f"item-{index}")
            _record(
                health,
                _KIND_RETRY,
                f"retry {failures}/{retries} after {last_error} "
                f"(backoff {delay:.3f}s)",
                item=index,
            )
            if delay > 0.0:
                time.sleep(delay)
        try:
            return fn(item)
        except Exception as error:  # noqa: BLE001
            failures += 1
            last_error = f"{type(error).__name__}: {error}"
            _record(health, _KIND_FAULT, last_error, item=index)
            if failures > retries:
                raise TransientWorkerError(
                    f"task {index} failed {failures} time(s): {last_error} "
                    f"(item {item!r})",
                    item_index=index,
                    item_repr=repr(item),
                    attempts=failures,
                ) from error


def _serial_map(
    fn: Callable[[_T], _R],
    tasks: Sequence[_T],
    start: int,
    *,
    retries: int,
    backoff: ExponentialBackoff,
    health,
    out: List[_R],
) -> List[_R]:
    for offset, item in enumerate(tasks):
        out.append(
            _run_item_supervised(
                fn, item, start + offset,
                retries=retries, backoff=backoff, health=health,
            )
        )
    return out


def deterministic_map(
    fn: Callable[[_T], _R],
    tasks: Sequence[_T],
    *,
    workers: int | None = None,
    initializer: Callable[..., Any] | None = None,
    initargs: Iterable[Any] = (),
    chunksize: int | None = None,
    retries: int = 0,
    timeout_s: float | None = None,
    backoff: Optional[ExponentialBackoff] = None,
    health=None,
) -> list[_R]:
    """Map ``fn`` over ``tasks``, returning results in task order.

    The output is independent of ``workers``: parallelism changes only
    wall-clock time, never the result.  Falls back to a serial loop when
    ``workers`` resolves to 1, when there are at most 2 tasks, or when a
    process pool cannot be created (restricted environments).

    Supervision (all optional):

    * ``retries`` — per-item retry budget; a worker-side failure counts
      as the first attempt and remaining attempts run in the parent.
      When the budget is exhausted the failure is re-raised as
      :class:`TransientWorkerError` naming the item's index and repr.
    * ``timeout_s`` — per-item time allowance.  A chunk that exceeds
      ``timeout_s × len(chunk)`` is abandoned (its pool is shut down
      without waiting) and the remaining work degrades to serial
      execution; a wedged *function* will still hang the serial pass,
      which is what CI-level global timeouts are for.
    * ``backoff`` — delay schedule between retries (defaults to a
      deterministic ~50 ms-base exponential).
    * ``health`` — a ``CampaignHealthReport`` to receive fault/retry/
      degradation events.
    """
    tasks = list(tasks)
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    backoff = backoff or ExponentialBackoff(base_s=0.05, cap_s=2.0)
    if workers is None:
        workers = default_workers(len(tasks))
    workers = min(workers, len(tasks)) if tasks else 1
    if workers <= 1 or len(tasks) <= 2:
        if initializer is not None:
            initializer(*initargs)
        return _serial_map(
            fn, tasks, 0,
            retries=retries, backoff=backoff, health=health, out=[],
        )
    if chunksize is None:
        chunksize = max(1, len(tasks) // (workers * 4))
    chunks: List[Tuple[int, List[_T]]] = [
        (start, tasks[start:start + chunksize])
        for start in range(0, len(tasks), chunksize)
    ]

    results: List[_R] = []
    pool: ProcessPoolExecutor | None = None
    try:
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=initializer,
            initargs=tuple(initargs),
        )
        futures = [
            pool.submit(_chunk_runner, (fn, start, chunk))
            for start, chunk in chunks
        ]
    except (OSError, PermissionError, ValueError) as error:
        # Sandboxes without /dev/shm or fork support: run serially.
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        _record(
            health, _KIND_DEGRADATION,
            f"process pool unavailable ({type(error).__name__}: {error}); "
            f"running serially",
        )
        if initializer is not None:
            initializer(*initargs)
        return _serial_map(
            fn, tasks, 0,
            retries=retries, backoff=backoff, health=health, out=[],
        )

    # Parent-side execution (retries, degraded serial tail) needs the
    # worker context too; build it lazily, at most once.
    parent_ready = False

    def ensure_parent_init() -> None:
        nonlocal parent_ready
        if not parent_ready:
            if initializer is not None:
                initializer(*initargs)
            parent_ready = True

    degraded_reason: str | None = None
    try:
        for chunk_index, (start, chunk) in enumerate(chunks):
            if degraded_reason is not None:
                ensure_parent_init()
                _serial_map(
                    fn, chunk, start,
                    retries=retries, backoff=backoff, health=health,
                    out=results,
                )
                continue
            future = futures[chunk_index]
            chunk_timeout = (
                timeout_s * len(chunk) if timeout_s is not None else None
            )
            try:
                outcome = future.result(timeout=chunk_timeout)
            except FutureTimeout:
                degraded_reason = (
                    f"chunk at {start} exceeded {chunk_timeout:.1f}s"
                )
                _record(
                    health, _KIND_FAULT,
                    f"timeout: {degraded_reason}", item=start,
                )
                _record(
                    health, _KIND_DEGRADATION,
                    "pool abandoned after timeout; remaining tasks run "
                    "serially",
                )
                pool.shutdown(wait=False, cancel_futures=True)
                ensure_parent_init()
                _serial_map(
                    fn, chunk, start,
                    retries=retries, backoff=backoff, health=health,
                    out=results,
                )
                continue
            except BrokenProcessPool:
                degraded_reason = "process pool broke (worker died)"
                _record(
                    health, _KIND_FAULT,
                    f"{degraded_reason} while waiting on chunk at {start}",
                    item=start,
                )
                _record(
                    health, _KIND_DEGRADATION,
                    "remaining tasks run serially in the parent",
                )
                pool.shutdown(wait=False, cancel_futures=True)
                ensure_parent_init()
                _serial_map(
                    fn, chunk, start,
                    retries=retries, backoff=backoff, health=health,
                    out=results,
                )
                continue
            if outcome[0] == "ok":
                results.extend(outcome[1])
                continue
            # Worker-side item failure: keep the chunk's computed
            # prefix, charge the failure against the item's retry
            # budget, and finish the chunk in the parent.
            _, prefix, fail_index, item_repr, cause = outcome
            results.extend(prefix)
            _record(
                health, _KIND_FAULT,
                f"worker failure on task {fail_index} ({item_repr}): {cause}",
                item=fail_index,
            )
            failed_item = tasks[fail_index]
            ensure_parent_init()
            results.append(
                _run_item_supervised(
                    fn, failed_item, fail_index,
                    retries=retries, backoff=backoff, health=health,
                    failures=1, last_error=cause,
                )
            )
            remainder_start = fail_index + 1
            _serial_map(
                fn, tasks[remainder_start:start + len(chunk)], remainder_start,
                retries=retries, backoff=backoff, health=health, out=results,
            )
    finally:
        pool.shutdown(wait=degraded_reason is None, cancel_futures=True)
    return results
