"""Deterministic process-parallel mapping for independent campaigns.

Per-CPU toolchain campaigns and coverage experiments are embarrassingly
parallel: each task owns its processor, its runner, and its substream.
:func:`deterministic_map` fans such tasks out over a
``ProcessPoolExecutor`` while keeping the results bit-identical to a
serial run:

* results are collected **in submission order** (``Executor.map``), so
  downstream aggregation sees the same sequence regardless of worker
  scheduling;
* tasks never share RNG state — callers seed each task from its index
  (e.g. ``substream(seed, "sweep", str(i))``), so the draw sequence of
  task *i* is independent of how many workers ran it;
* ``workers <= 1`` (or an unavailable ``fork``/pool) falls back to a
  plain serial loop, which is also the cheapest path for small inputs.

The function accepts a module-level ``fn`` plus picklable task payloads.
An optional ``initializer`` runs once per worker process to build
expensive shared context (testcase libraries, catalogs) instead of
pickling it per task.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

__all__ = ["default_workers", "deterministic_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_workers(task_count: int | None = None) -> int:
    """A sensible worker count: CPUs, capped by the number of tasks."""
    workers = os.cpu_count() or 1
    if task_count is not None:
        workers = min(workers, task_count)
    return max(1, workers)


def deterministic_map(
    fn: Callable[[_T], _R],
    tasks: Sequence[_T],
    *,
    workers: int | None = None,
    initializer: Callable[..., Any] | None = None,
    initargs: Iterable[Any] = (),
    chunksize: int | None = None,
) -> list[_R]:
    """Map ``fn`` over ``tasks``, returning results in task order.

    The output is independent of ``workers``: parallelism changes only
    wall-clock time, never the result.  Falls back to a serial loop when
    ``workers`` resolves to 1, when there are at most 2 tasks, or when a
    process pool cannot be created (restricted environments).
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers(len(tasks))
    workers = min(workers, len(tasks)) if tasks else 1
    if workers <= 1 or len(tasks) <= 2:
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]
    if chunksize is None:
        chunksize = max(1, len(tasks) // (workers * 4))
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=initializer,
            initargs=tuple(initargs),
        ) as pool:
            return list(pool.map(fn, tasks, chunksize=chunksize))
    except (OSError, PermissionError, ValueError):
        # Sandboxes without /dev/shm or fork support: run serially.
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]
