"""Bit-exact, vectorised replay of ``numpy.random.Generator`` streams.

The fleet campaign's trigger law resolves one *behaviour* per
``(defect, setting)`` pair, each from its own named substream
(``substream(0, "trigger", defect_id, setting_key)``).  Creating tens of
thousands of ``numpy.random.Generator`` objects costs ~20 µs apiece —
far more than the draws themselves — so the vectorised campaign engine
replays those streams wholesale:

1. :func:`derive_seed_batch` — SHA-256 child-seed derivation with a
   shared-prefix fast path (one hasher copy per varying suffix).
2. :func:`pcg64_state_words` — a vectorised re-implementation of
   ``numpy.random.SeedSequence``'s entropy hash-mix.  The hash constants
   form a data-independent schedule, so N seeds mix in lockstep as
   uint32 array ops.
3. :class:`VectorPCG64` — N independent PCG64 streams advanced together
   (128-bit LCG arithmetic on 32-bit limbs), emitting the same 64-bit
   outputs, uniform doubles, and ziggurat normal variates as NumPy's
   scalar generator, bit for bit.

Rare ziggurat rejection paths (wedge/tail, ~1% of draws) resolve in
batched rounds: the rejected lanes re-draw together through the
vectorised generator, while the accept tests themselves use :mod:`math`
transcendentals, because NumPy's SIMD ``np.exp``/``np.log1p`` array
kernels are not bitwise identical to the C library calls the scalar
generator makes.

Bit-exactness is load-bearing: the behaviour's ``tmin`` gates whether a
stage occurrence consumes Bernoulli draws at all, so a 1-ULP drift
would desynchronise the replayed detection stream from the scalar
reference.  ``tests/unit/test_vectorized.py`` checks equality against
``numpy.random.default_rng`` over thousands of seeds, including the
rejection paths.
"""

from __future__ import annotations

import hashlib
import math
from typing import Sequence

import numpy as np

from .ziggurat_tables import FI, KI, WI, ZIGGURAT_NOR_INV_R, ZIGGURAT_NOR_R

__all__ = [
    "derive_seed_batch",
    "derive_from_hasher",
    "encode_names",
    "seed_hasher",
    "pcg64_state_words",
    "VectorPCG64",
]

_MASK64 = (1 << 64) - 1

# --------------------------------------------------------------------------
# SHA-256 child-seed derivation (vector form of repro.rng.derive_seed)
# --------------------------------------------------------------------------


def seed_hasher(seed: int, *names: str):
    """SHA-256 hasher primed with a :func:`repro.rng.derive_seed` prefix.

    Copy the returned hasher and feed it :func:`encode_names` blobs to
    derive children without re-hashing the shared prefix.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(seed)).encode("ascii"))
    for name in names:
        hasher.update(b"\x00")
        hasher.update(name.encode("utf-8"))
    return hasher


def encode_names(names: Sequence[str]) -> list[bytes]:
    """Pre-encode name components for :func:`derive_from_hasher`."""
    return [b"\x00" + name.encode("utf-8") for name in names]


def derive_from_hasher(base, encoded: Sequence[bytes]) -> list[int]:
    """Child seeds for each encoded suffix appended to ``base``.

    ``base`` comes from :func:`seed_hasher`; ``encoded`` from
    :func:`encode_names` (cacheable when the same suffixes recur).  One
    hasher copy + single-block digest per suffix is the whole cost.
    """
    copy = base.copy
    from_bytes = int.from_bytes
    # hasher.update returns None, so `or` chains it into the digest.
    return [
        from_bytes(
            (hasher := copy()).update(blob) or hasher.digest()[:8], "little"
        )
        for blob in encoded
    ]


def derive_seed_batch(
    seed: int, prefix: Sequence[str], suffixes: Sequence[str]
) -> np.ndarray:
    """Vector form of :func:`repro.rng.derive_seed`.

    Returns ``uint64`` seeds for ``derive_seed(seed, *prefix, s)`` for
    each ``s`` in ``suffixes``.  The shared prefix is hashed once and
    copied per suffix, which is the dominant saving when one defect
    fans out to many setting keys.
    """
    values = derive_from_hasher(seed_hasher(seed, *prefix), encode_names(suffixes))
    return np.array(values, dtype=np.uint64)


# --------------------------------------------------------------------------
# SeedSequence hash-mix (pool size 4, entropy = one uint64 seed)
# --------------------------------------------------------------------------

_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)

# The hash constant evolves independently of the data: position k of the
# mix uses A[k] for the xor and A[k+1] for the multiply.
_A_CONSTS = [_INIT_A]
for _ in range(16):
    _A_CONSTS.append((_A_CONSTS[-1] * _MULT_A) & 0xFFFFFFFF)
_A_CONSTS = [np.uint32(c) for c in _A_CONSTS]

_B_CONSTS = [_INIT_B]
for _ in range(8):
    _B_CONSTS.append((_B_CONSTS[-1] * _MULT_B) & 0xFFFFFFFF)
_B_CONSTS = [np.uint32(c) for c in _B_CONSTS]


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    result = x * _MIX_MULT_L - y * _MIX_MULT_R  # uint32 wraparound
    result ^= result >> _XSHIFT
    return result


def pcg64_state_words(seeds: np.ndarray) -> list[np.ndarray]:
    """Replay ``SeedSequence(seed).generate_state(4, uint64)`` for N seeds.

    ``seeds`` is a ``uint64`` array; the result is four ``uint64``
    arrays ``[w0, w1, w2, w3]`` matching NumPy word for word.  A seed
    below 2**32 coerces to one entropy word in NumPy and two here, but
    the second word is then zero and hashes identically to NumPy's
    zero-fill, so both ranges share one code path.
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    entropy = [
        (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32),
        (seeds >> np.uint64(32)).astype(np.uint32),
        np.zeros(seeds.shape, dtype=np.uint32),
        np.zeros(seeds.shape, dtype=np.uint32),
    ]
    position = 0

    def hashed(value: np.ndarray) -> np.ndarray:
        nonlocal position
        value = value ^ _A_CONSTS[position]
        value = value * _A_CONSTS[position + 1]
        value ^= value >> _XSHIFT
        position += 1
        return value

    pool = [hashed(word) for word in entropy]
    for i_src in range(4):
        for i_dst in range(4):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], hashed(pool[i_src]))

    state32 = []
    for i in range(8):
        value = pool[i % 4] ^ _B_CONSTS[i]
        value = value * _B_CONSTS[i + 1]
        value ^= value >> _XSHIFT
        state32.append(value)
    words = []
    for j in range(4):
        lo = state32[2 * j].astype(np.uint64)
        hi = state32[2 * j + 1].astype(np.uint64)
        words.append(lo | (hi << np.uint64(32)))
    return words


# --------------------------------------------------------------------------
# PCG64 (XSL-RR 128/64) on 32-bit limbs
# --------------------------------------------------------------------------

_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MULT_LIMBS = tuple(
    np.uint64((_PCG_MULT >> (32 * i)) & 0xFFFFFFFF) for i in range(4)
)
_M32 = np.uint64(0xFFFFFFFF)
_U32 = np.uint64(32)
_MASK52 = np.uint64((1 << 52) - 1)
_TO_DOUBLE = 1.0 / 9007199254740992.0  # 2**-53

_FI_LIST = [float(v) for v in FI]


def _split128(hi: np.ndarray, lo: np.ndarray) -> list[np.ndarray]:
    """Split two uint64 halves into four little-endian 32-bit limbs."""
    return [lo & _M32, lo >> _U32, hi & _M32, hi >> _U32]


def _mul128_const(limbs: list[np.ndarray]) -> list[np.ndarray]:
    """(value * PCG multiplier) mod 2**128 on 32-bit limbs."""
    s0, s1, s2, s3 = limbs
    m0, m1, m2, m3 = _MULT_LIMBS
    # Column 0
    p = s0 * m0
    r0 = p & _M32
    carry = p >> _U32
    # Column 1: add partial products one at a time; each uint64 term
    # stays below 2**36, so the accumulator cannot overflow.
    lo_acc = carry
    p = s0 * m1
    lo_acc = lo_acc + (p & _M32)
    carry = p >> _U32
    p = s1 * m0
    lo_acc = lo_acc + (p & _M32)
    carry = carry + (p >> _U32)
    r1 = lo_acc & _M32
    carry = carry + (lo_acc >> _U32)
    # Column 2
    lo_acc = carry
    carry = np.zeros_like(carry)
    for a, b in ((s0, m2), (s1, m1), (s2, m0)):
        p = a * b
        lo_acc = lo_acc + (p & _M32)
        carry = carry + (p >> _U32)
    r2 = lo_acc & _M32
    carry = carry + (lo_acc >> _U32)
    # Column 3 (mod 2**128: discard the outgoing carry)
    lo_acc = carry
    for a, b in ((s0, m3), (s1, m2), (s2, m1), (s3, m0)):
        lo_acc = lo_acc + ((a * b) & _M32)
    r3 = lo_acc & _M32
    return [r0, r1, r2, r3]


def _mul128(a: list[np.ndarray], b: list[np.ndarray]) -> list[np.ndarray]:
    """(a * b) mod 2**128 for two limb vectors (general jump-ahead form).

    Same column scheme as :func:`_mul128_const`, but the right operand
    is per-lane data (the running squares of the jump polynomial), not
    the fixed PCG multiplier.
    """
    a0, a1, a2, a3 = a
    b0, b1, b2, b3 = b
    # Column 0
    p = a0 * b0
    r0 = p & _M32
    carry = p >> _U32
    # Column 1
    lo_acc = carry
    p = a0 * b1
    lo_acc = lo_acc + (p & _M32)
    carry = p >> _U32
    p = a1 * b0
    lo_acc = lo_acc + (p & _M32)
    carry = carry + (p >> _U32)
    r1 = lo_acc & _M32
    carry = carry + (lo_acc >> _U32)
    # Column 2
    lo_acc = carry
    carry = np.zeros_like(carry)
    for x, y in ((a0, b2), (a1, b1), (a2, b0)):
        p = x * y
        lo_acc = lo_acc + (p & _M32)
        carry = carry + (p >> _U32)
    r2 = lo_acc & _M32
    carry = carry + (lo_acc >> _U32)
    # Column 3 (mod 2**128: discard the outgoing carry)
    lo_acc = carry
    for x, y in ((a0, b3), (a1, b2), (a2, b1), (a3, b0)):
        lo_acc = lo_acc + ((x * y) & _M32)
    r3 = lo_acc & _M32
    return [r0, r1, r2, r3]


def _add128(a: list[np.ndarray], b: list[np.ndarray]) -> list[np.ndarray]:
    out = []
    carry = np.zeros_like(a[0])
    for ai, bi in zip(a, b):
        total = ai + bi + carry
        out.append(total & _M32)
        carry = total >> _U32
    return out


class VectorPCG64:
    """N PCG64 streams advanced in lockstep, bit-compatible with NumPy.

    Construct via :meth:`from_seeds`.  Methods take an optional ``idx``
    array of lane indices; only those lanes step, so independent lanes
    may consume different numbers of draws (as the ziggurat sampler
    requires) without disturbing each other.
    """

    def __init__(self, state: list[np.ndarray], inc: list[np.ndarray]):
        self._state = state
        self._inc = inc
        self.size = int(state[0].shape[0])

    @classmethod
    def from_seeds(cls, seeds: np.ndarray) -> "VectorPCG64":
        """Streams equivalent to ``np.random.default_rng(seed)`` per seed."""
        w0, w1, w2, w3 = pcg64_state_words(seeds)
        initstate = _split128(w0, w1)
        initseq = _split128(w2, w3)
        # inc = (initseq << 1) | 1
        one = np.uint64(1)
        u31 = np.uint64(31)
        inc = [
            ((initseq[0] << one) | one) & _M32,
            ((initseq[1] << one) | (initseq[0] >> u31)) & _M32,
            ((initseq[2] << one) | (initseq[1] >> u31)) & _M32,
            ((initseq[3] << one) | (initseq[2] >> u31)) & _M32,
        ]
        # srandom_r: state = step(0) = inc; state += initstate; step.
        state = _add128(inc, initstate)
        state = _add128(_mul128_const(state), inc)
        return cls(state, inc)

    def advance(
        self, delta, idx: np.ndarray | None = None
    ) -> "VectorPCG64":
        """Jump the selected lanes ``delta`` steps ahead in O(log delta).

        Matches ``numpy.random.PCG64.advance`` bit for bit: the LCG
        ``state' = A*state + inc`` composes in closed form, so ``delta``
        steps are ``state' = A^delta * state + (A^delta - 1)/(A - 1) *
        inc``, evaluated by square-and-multiply on 32-bit limbs.
        ``delta`` is either a non-negative int applied to every selected
        lane or a per-lane ``uint64`` array (lanes with different draw
        debts jump independently).  Returns ``self`` for chaining.
        """
        state, inc = self._gather(idx)
        shape = state[0].shape
        per_lane = not isinstance(delta, (int, np.integer))
        if per_lane:
            delta = np.asarray(delta, dtype=np.uint64)
            if delta.shape != shape:
                raise ValueError("per-lane delta must have one entry per lane")
            bits = int(delta.max()).bit_length() if delta.size else 0
            delta_limbs = [delta & _M32, delta >> _U32]
        else:
            if delta < 0 or delta >= (1 << 128):
                raise ValueError("delta must be in [0, 2**128)")
            delta = int(delta)
            bits = delta.bit_length()

        zeros = np.zeros(shape, dtype=np.uint64)
        ones = np.ones(shape, dtype=np.uint64)

        def _const(value: int) -> list[np.ndarray]:
            return [
                np.full(shape, (value >> (32 * i)) & 0xFFFFFFFF, dtype=np.uint64)
                for i in range(4)
            ]

        acc_mult = [ones.copy(), zeros.copy(), zeros.copy(), zeros.copy()]
        acc_plus = [zeros.copy() for _ in range(4)]
        cur_mult = _const(_PCG_MULT)
        cur_plus = [limb.copy() for limb in inc]
        one_limbs = [ones, zeros, zeros, zeros]
        for bit in range(bits):
            new_mult = _mul128(acc_mult, cur_mult)
            new_plus = _add128(_mul128(acc_plus, cur_mult), cur_plus)
            if per_lane:
                mask = (
                    (delta_limbs[bit // 32] >> np.uint64(bit % 32))
                    & np.uint64(1)
                ).astype(bool)
                acc_mult = [
                    np.where(mask, new, old)
                    for new, old in zip(new_mult, acc_mult)
                ]
                acc_plus = [
                    np.where(mask, new, old)
                    for new, old in zip(new_plus, acc_plus)
                ]
            elif (delta >> bit) & 1:
                acc_mult = new_mult
                acc_plus = new_plus
            cur_plus = _mul128(_add128(cur_mult, one_limbs), cur_plus)
            cur_mult = _mul128(cur_mult, cur_mult)
        state = _add128(_mul128(acc_mult, state), acc_plus)
        if idx is None:
            self._state = state
        else:
            for limb, new in zip(self._state, state):
                limb[idx] = new
        return self

    def _gather(self, idx: np.ndarray | None) -> tuple[list, list]:
        if idx is None:
            return self._state, self._inc
        return (
            [limb[idx] for limb in self._state],
            [limb[idx] for limb in self._inc],
        )

    def next64(self, idx: np.ndarray | None = None) -> np.ndarray:
        """Advance the selected lanes and return their 64-bit outputs."""
        state, inc = self._gather(idx)
        state = _add128(_mul128_const(state), inc)
        if idx is None:
            self._state = state
        else:
            for limb, new in zip(self._state, state):
                limb[idx] = new
        lo = state[0] | (state[1] << _U32)
        hi = state[2] | (state[3] << _U32)
        rot = state[3] >> np.uint64(26)  # state >> 122
        xored = hi ^ lo
        # rotr64; (64 - rot) & 63 keeps the shift defined when rot == 0.
        left = (np.uint64(64) - rot) & np.uint64(63)
        return (xored >> rot) | (xored << left)

    def next_double(self, idx: np.ndarray | None = None) -> np.ndarray:
        out = self.next64(idx)
        return (out >> np.uint64(11)).astype(np.float64) * _TO_DOUBLE

    def uniform(
        self, low: float, high: float, idx: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-lane equivalent of ``Generator.uniform(low, high)``."""
        return low + (high - low) * self.next_double(idx)

    def normal(
        self, scale: float, idx: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-lane equivalent of ``Generator.normal(0.0, scale)``."""
        return scale * self.standard_normal(idx)

    def standard_normal(self, idx: np.ndarray | None = None) -> np.ndarray:
        """One ziggurat normal variate per selected lane."""
        if idx is None:
            idx = np.arange(self.size)
        out = np.empty(idx.shape[0], dtype=np.float64)
        r = self.next64(idx)
        strip = (r & np.uint64(0xFF)).astype(np.intp)
        r >>= np.uint64(8)
        sign = (r & np.uint64(1)).astype(bool)
        rabs = (r >> np.uint64(1)) & _MASK52
        x = rabs.astype(np.float64) * WI[strip]
        x = np.where(sign, -x, x)
        easy = rabs < KI[strip]
        out[easy] = x[easy]
        hard = np.flatnonzero(~easy)
        if hard.size:
            self._normal_hard(idx[hard], hard, strip[hard], rabs[hard], x[hard], out)
        return out

    def _normal_hard(
        self,
        lanes: np.ndarray,
        pos: np.ndarray,
        strip: np.ndarray,
        rabs: np.ndarray,
        x: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Wedge/tail continuation, matching NumPy's scalar rejection loop.

        The unresolved lanes re-draw together through the vectorised
        generator each round (tail lanes consume two doubles, wedge
        lanes one double plus a fresh 64-bit word on rejection — the
        exact per-stream draw pattern of the scalar loop).  Accept tests
        use :mod:`math` transcendentals because the scalar generator
        links against libm, whose results differ in the last ulp from
        NumPy's SIMD array kernels.
        """
        exp = math.exp
        log1p = math.log1p
        while pos.size:
            done = np.zeros(pos.size, dtype=bool)
            tail = strip == 0
            tail_sel = np.flatnonzero(tail)
            if tail_sel.size:
                tail_lanes = lanes[tail_sel]
                d1 = self.next_double(tail_lanes).tolist()
                d2 = self.next_double(tail_lanes).tolist()
                tail_pos = pos[tail_sel].tolist()
                tail_sign = (
                    (rabs[tail_sel] >> np.uint64(8)) & np.uint64(1)
                ).tolist()
                for k, (u1, u2) in enumerate(zip(d1, d2)):
                    xx = -ZIGGURAT_NOR_INV_R * log1p(-u1)
                    yy = -log1p(-u2)
                    if yy + yy > xx * xx:
                        value = ZIGGURAT_NOR_R + xx
                        out[tail_pos[k]] = -value if tail_sign[k] else value
                        done[tail_sel[k]] = True
            wedge_sel = np.flatnonzero(~tail)
            if wedge_sel.size:
                d = self.next_double(lanes[wedge_sel]).tolist()
                wedge_x = x[wedge_sel].tolist()
                wedge_strip = strip[wedge_sel].tolist()
                wedge_pos = pos[wedge_sel].tolist()
                rejected = []
                for k, u in enumerate(d):
                    s = wedge_strip[k]
                    value = wedge_x[k]
                    if (_FI_LIST[s - 1] - _FI_LIST[s]) * u + _FI_LIST[s] < exp(
                        -0.5 * value * value
                    ):
                        out[wedge_pos[k]] = value
                        done[wedge_sel[k]] = True
                    else:
                        rejected.append(k)
                if rejected:
                    rej = wedge_sel[rejected]
                    r = self.next64(lanes[rej])
                    new_strip = (r & np.uint64(0xFF)).astype(np.intp)
                    r >>= np.uint64(8)
                    sign = (r & np.uint64(1)).astype(bool)
                    new_rabs = (r >> np.uint64(1)) & _MASK52
                    new_x = new_rabs.astype(np.float64) * WI[new_strip]
                    new_x = np.where(sign, -new_x, new_x)
                    accept = new_rabs < KI[new_strip]
                    out[pos[rej[accept]]] = new_x[accept]
                    done[rej[accept]] = True
                    strip[rej] = new_strip
                    rabs[rej] = new_rabs
                    x[rej] = new_x
            keep = ~done
            pos = pos[keep]
            lanes = lanes[keep]
            strip = strip[keep]
            rabs = rabs[keep]
            x = x[keep]
