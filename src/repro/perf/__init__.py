"""Performance primitives: exact RNG replay and deterministic parallelism.

This package holds the machinery that lets the hot paths go fast
*without changing any observable result*:

* :mod:`repro.perf.exact_rng` — vectorised, bit-exact replay of
  ``numpy.random.Generator`` substreams (SHA-256 seed derivation,
  ``SeedSequence`` hash-mix, PCG64, uniform and ziggurat-normal
  variates).  Used by :mod:`repro.fleet.vectorized` to resolve
  thousands of trigger behaviours in a few array ops.
* :mod:`repro.perf.parallel` — a deterministic ``ProcessPoolExecutor``
  map with ordered collection and per-task seeding, used for
  independent per-CPU toolchain campaigns.
* :mod:`repro.perf.ziggurat_tables` — the bit patterns of NumPy's
  ziggurat tables, embedded so the replay cannot drift with library
  formatting.
"""

from .exact_rng import VectorPCG64, derive_seed_batch, pcg64_state_words
from .parallel import default_workers, deterministic_map

__all__ = [
    "VectorPCG64",
    "derive_seed_batch",
    "pcg64_state_words",
    "default_workers",
    "deterministic_map",
]
