"""Concrete multi-threaded consistency testcases.

The statistical runner samples consistency-SDC *counts*; this module
provides the concrete counterpart: scripted multi-threaded programs
against the MESI and transactional-memory simulators, demonstrating the
actual anomalies (stale reads, torn commits) that those counts stand
for.  §4.1: consistency SDCs "can only be detected with multi-threaded
tests" — the single-threaded variants here exist precisely to show they
detect nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import substream
from ..cpu.coherence import CoherentSystem, StaleRead, drop_hook_from_defect
from ..cpu.defects import Defect
from ..cpu.features import Feature
from ..cpu.processor import Processor
from ..cpu.txmem import TornCommit, TransactionalMemory, tear_hook_from_defect
from ..faults.trigger import TriggerModel

__all__ = [
    "CoherenceTestResult",
    "TxMemTestResult",
    "run_coherence_test",
    "run_txmem_test",
]


@dataclass
class CoherenceTestResult:
    """Outcome of the producer/consumer shared-buffer test."""

    operations: int
    checksum_mismatches: int
    stale_reads: List[StaleRead]

    @property
    def detected(self) -> bool:
        return self.checksum_mismatches > 0


@dataclass
class TxMemTestResult:
    """Outcome of the paired-counter transactional test."""

    transactions: int
    invariant_violations: int
    torn_commits: List[TornCommit]

    @property
    def detected(self) -> bool:
        return self.invariant_violations > 0


def _consistency_defect(
    processor: Processor, feature: Feature
) -> Optional[Defect]:
    for defect in processor.active_defects():
        if defect.is_consistency and feature in defect.features:
            return defect
    return None


def _thread_to_pcore(processor: Processor, threads: int, defect) -> List[int]:
    """Map simulator thread slots onto physical cores.

    Defective cores are scheduled first (a test that avoids them cannot
    detect anything), then healthy cores fill the remaining slots.
    """
    preferred = list(defect.core_ids) if defect is not None else []
    rest = [
        c.pcore_id
        for c in processor.physical_cores
        if c.pcore_id not in set(preferred)
    ]
    ordering = preferred + rest
    return [ordering[i % len(ordering)] for i in range(threads)]


def run_coherence_test(
    processor: Processor,
    iterations: int = 2_000,
    threads: int = 2,
    temperature_c: float = 60.0,
    ops_per_s: float = 5.0e5,
    trigger: Optional[TriggerModel] = None,
    seed: int = 0,
    time_compression: float = 1.0,
) -> CoherenceTestResult:
    """The §2.2 shared-buffer scenario as a coherence testcase.

    A client thread packs ``(data, checksum)`` into shared locations;
    daemon threads read both and verify ``checksum == data & 0xFFFF``.
    On a healthy processor every verification passes; with a defective-
    coherence processor, dropped invalidations leave daemons reading a
    stale half of the pair — the checksum-mismatch storms of the paper's
    second case study.
    """
    if threads < 2:
        raise ConfigurationError("coherence tests need at least two threads")
    trigger = trigger or TriggerModel()
    rng = substream(seed, "coherence-test", processor.processor_id)
    defect = _consistency_defect(processor, Feature.CACHE)
    hook = None
    if defect is not None:
        # Thread 0 is the writer; coherence violations manifest on the
        # *reader* side (stale lines), so defective cores take the
        # reader slots.
        ordering = _thread_to_pcore(processor, threads, defect)
        pcores = [ordering[-1]] + ordering[:-1]
        raw_hook = drop_hook_from_defect(
            defect, trigger, "MT-COHERENCE", temperature_c, ops_per_s, rng,
            time_compression=time_compression,
        )

        def hook(event, core_id, _raw=raw_hook, _map=pcores):
            return _raw(event, _map[core_id])

    system = CoherentSystem(n_cores=threads, drop_hook=hook)

    data_addr, checksum_addr = 0, 1
    mismatches = 0
    for i in range(iterations):
        value = int(rng.integers(0, 1 << 30))
        system.write(0, data_addr, value)
        system.write(0, checksum_addr, value & 0xFFFF)
        for reader in range(1, threads):
            data = system.read(reader, data_addr)
            checksum = system.read(reader, checksum_addr)
            if checksum != (data & 0xFFFF):
                mismatches += 1
    return CoherenceTestResult(
        operations=iterations,
        checksum_mismatches=mismatches,
        stale_reads=list(system.violations),
    )


def run_txmem_test(
    processor: Processor,
    transactions: int = 2_000,
    threads: int = 2,
    temperature_c: float = 60.0,
    commits_per_s: float = 5.0e5,
    trigger: Optional[TriggerModel] = None,
    seed: int = 0,
    time_compression: float = 1.0,
) -> TxMemTestResult:
    """Paired-counter atomicity test for transactional memory.

    Each transaction increments two counters that must stay equal.  A
    torn commit (CNST-style defect) applies only one increment, breaking
    the invariant — the kind of silent inconsistency behind CNST2's
    failed testcases.
    """
    if threads < 2:
        raise ConfigurationError("txmem tests need at least two threads")
    trigger = trigger or TriggerModel()
    rng = substream(seed, "txmem-test", processor.processor_id)
    defect = _consistency_defect(processor, Feature.TRX_MEM)
    hook = None
    if defect is not None:
        pcores = _thread_to_pcore(processor, threads, defect)
        raw_hook = tear_hook_from_defect(
            defect, trigger, "MT-TXMEM", temperature_c, commits_per_s, rng,
            time_compression=time_compression,
        )

        def hook(core_id, _raw=raw_hook, _map=pcores):
            return _raw(_map[core_id])

    memory = TransactionalMemory(tear_hook=hook)
    counter_a, counter_b = 0, 1

    violations = 0
    committed = 0
    for i in range(transactions):
        core = i % threads
        memory.begin(core)
        a = memory.read(core, counter_a)
        b = memory.read(core, counter_b)
        memory.write(core, counter_a, a + 1)
        memory.write(core, counter_b, b + 1)
        if memory.commit(core):
            committed += 1
            if memory.peek(counter_a) != memory.peek(counter_b):
                violations += 1
                # Repair the invariant so each torn commit is counted
                # once rather than tainting every later check.
                repaired = max(memory.peek(counter_a), memory.peek(counter_b))
                memory.store[counter_a] = repaired
                memory.store[counter_b] = repaired
    return TxMemTestResult(
        transactions=committed,
        invariant_violations=violations,
        torn_commits=list(memory.violations),
    )
