"""Running testcases against a simulated processor.

Two fidelities share one trigger law:

* :meth:`ToolchainRunner.run_testcase` co-simulates the thermal model
  and statistical error arrival (Poisson with the setting's occurrence
  frequency), materializing each error's corrupted value through the
  defect's bitflip model.  This is how month-scale test campaigns run
  in milliseconds while still producing bit-accurate SDC records.
* :meth:`ToolchainRunner.run_at_fixed_temperature` holds temperature
  constant — the §5 methodology of preheating to a desired temperature
  and measuring occurrence frequency there (Figure 8's sweeps).

Thermal coupling details the paper leans on are reproduced: cores under
test heat the shared package (busy-neighbour effect), heat persists
across consecutive testcases (test-order effect), and per-core heat is
throttled at a realistic ceiling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import substream
from ..cpu import datatypes
from ..cpu.defects import Defect
from ..cpu.features import DataType, Feature
from ..cpu.isa import DEFAULT_ISA, ISA, Instruction
from ..cpu.processor import Processor
from ..faults.injector import FaultInjector
from ..faults.trigger import TriggerModel
from ..thermal.model import PackageThermalModel
from .records import ConsistencyRecord, RecordStore, SDCRecord
from .testcase import ConsistencyKind, Testcase

__all__ = ["TestcaseRun", "ToolchainRunner", "HEAT_THROTTLE"]

#: Per-core heat-factor ceiling: sustained power is thermally throttled,
#: keeping all-core burn-in just under the package temperature limit.
HEAT_THROTTLE = 1.6


@dataclass
class TestcaseRun:
    """Outcome of running one testcase for one duration."""

    __test__ = False  # not a pytest test class


    processor_id: str
    testcase_id: str
    duration_s: float
    records: List[SDCRecord] = field(default_factory=list)
    consistency_records: List[ConsistencyRecord] = field(default_factory=list)
    start_temp_c: float = 0.0
    end_temp_c: float = 0.0
    max_core_temp_c: float = 0.0

    @property
    def detected(self) -> bool:
        return bool(self.records) or bool(self.consistency_records)

    @property
    def error_count(self) -> int:
        return len(self.records) + len(self.consistency_records)


#: The operand dtype depends only on the instruction's result dtype, so
#: one small map serves every ISA (materialization bursts hit this on
#: every record).
_OPERAND_DTYPE_CACHE: Dict[DataType, DataType] = {}


def _operand_dtype(instruction: Instruction) -> DataType:
    """Data type operands are drawn from for a given instruction."""
    dtype = instruction.dtype
    cached = _OPERAND_DTYPE_CACHE.get(dtype)
    if cached is None:
        if dtype.is_float:
            # Transcendental/extended ops consume doubles.
            cached = DataType.FLOAT64 if dtype is DataType.FLOAT64X else dtype
        else:
            cached = dtype
        _OPERAND_DTYPE_CACHE[dtype] = cached
    return cached


class ToolchainRunner:
    """Drives testcases from the library against one processor."""

    def __init__(
        self,
        processor: Processor,
        trigger_model: Optional[TriggerModel] = None,
        thermal: Optional[PackageThermalModel] = None,
        isa: ISA = DEFAULT_ISA,
        seed: int = 0,
        heat_scale: float = 1.0,
    ):
        if heat_scale <= 0:
            raise ConfigurationError("heat_scale must be positive")
        self.processor = processor
        self.trigger = trigger_model or TriggerModel()
        self.thermal = thermal or PackageThermalModel(processor.arch)
        self.isa = isa
        #: Framework efficiency multiplier on testcase heat.  §5's
        #: "toolchain update" case: a more efficient framework burns
        #: fewer cycles, generates less heat, and reproduces fewer SDCs.
        self.heat_scale = heat_scale
        self.injector = FaultInjector(processor, self.trigger)
        self._rng = substream(seed, "runner", processor.processor_id)
        # (masked_cores object, core-id list) — invalidated by identity
        # when the processor is rebuilt with a different mask.
        self._default_cores_cache: Optional[Tuple[frozenset, List[int]]] = None

    def default_cores(self) -> List[int]:
        """Unmasked physical-core ids, cached per mask object.

        ``available_cores`` builds fresh :class:`PhysicalCore` objects
        on every call; the screening engines ask for the same list once
        per plan entry, so memoize it.  The cache keys on the identity
        of ``masked_cores`` — pool operations replace the processor (or
        its frozenset) rather than mutating it in place.
        """
        cache = self._default_cores_cache
        masked = self.processor.masked_cores
        if cache is None or cache[0] is not masked:
            cores = [c.pcore_id for c in self.processor.available_cores()]
            self._default_cores_cache = (masked, cores)
            return cores
        return cache[1]

    # -- defect/testcase matching -----------------------------------------

    def _computation_settings(
        self, testcase: Testcase, pcore_id: int
    ) -> List[Tuple[Defect, str]]:
        """(defect, mnemonic) pairs this testcase can trigger on a core."""
        if testcase.is_consistency or pcore_id in self.processor.masked_cores:
            return []
        pairs = []
        for defect in self.processor.active_defects():
            if defect.is_consistency or not defect.affects_core(pcore_id):
                continue
            for mnemonic in defect.instructions:
                if testcase.uses_instruction(mnemonic):
                    pairs.append((defect, mnemonic))
        return pairs

    def _consistency_defects(
        self, testcase: Testcase, pcore_id: int
    ) -> List[Defect]:
        if not testcase.is_consistency or pcore_id in self.processor.masked_cores:
            return []
        wanted = (
            Feature.CACHE
            if testcase.consistency_kind is ConsistencyKind.COHERENCE
            else Feature.TRX_MEM
        )
        return [
            defect
            for defect in self.processor.active_defects()
            if defect.is_consistency
            and defect.affects_core(pcore_id)
            and wanted in defect.features
        ]

    def compiled_core_settings(
        self, testcase: Testcase, cores: Sequence[int]
    ) -> List[Tuple[int, List[tuple]]]:
        """Per-core compiled trigger settings for one testcase run.

        This hoists the per-setting work of
        :meth:`TriggerModel.sample_errors` — behaviour resolution, core
        multiplier, usage-stress power — out of the window loop.  Per
        core the order is computation settings then consistency
        defects, the order :meth:`_collect_interval` samples in.
        Settings whose law can never fire (``compile_setting`` →
        ``None``) draw nothing in the uncompiled path either, so
        dropping them changes no draw.  Each entry is ``(pcore_id,
        [(compiled, defect, mnemonic-or-None), ...])``; a ``None``
        mnemonic marks a consistency setting.
        """
        # Match defects against the testcase once, not once per core:
        # `_computation_settings` re-derives the same (defect, mnemonic)
        # candidates for all 64 cores, and on a full-library sweep most
        # testcases match nothing at all.  Per core only the
        # core-affinity filter remains, which preserves the scalar
        # per-core setting order (a subsequence of the hoisted lists).
        active = self.processor.active_defects()
        comp_matches: List[Tuple[Defect, str]] = []
        cons_matches: List[Defect] = []
        if testcase.is_consistency:
            wanted = (
                Feature.CACHE
                if testcase.consistency_kind is ConsistencyKind.COHERENCE
                else Feature.TRX_MEM
            )
            cons_matches = [
                defect
                for defect in active
                if defect.is_consistency and wanted in defect.features
            ]
        else:
            for defect in active:
                if defect.is_consistency:
                    continue
                for mnemonic in defect.instructions:
                    if testcase.uses_instruction(mnemonic):
                        comp_matches.append((defect, mnemonic))
        if not comp_matches and not cons_matches:
            return [(pcore_id, []) for pcore_id in cores]
        masked = self.processor.masked_cores
        plan = []
        for pcore_id in cores:
            settings: List[tuple] = []
            if pcore_id not in masked:
                for defect, mnemonic in comp_matches:
                    if not defect.affects_core(pcore_id):
                        continue
                    compiled = self.trigger.compile_setting(
                        defect,
                        testcase.testcase_id,
                        testcase.usage_per_s(mnemonic),
                        pcore_id,
                    )
                    if compiled is not None:
                        settings.append((compiled, defect, mnemonic))
                for defect in cons_matches:
                    if not defect.affects_core(pcore_id):
                        continue
                    compiled = self.trigger.compile_setting(
                        defect,
                        testcase.testcase_id,
                        testcase.consistency_ops_per_s,
                        pcore_id,
                    )
                    if compiled is not None:
                        settings.append((compiled, defect, None))
            plan.append((pcore_id, settings))
        return plan

    def can_ever_fail(self, testcase: Testcase) -> bool:
        """Whether any (core, defect) combination matches this testcase."""
        for pcore_id in range(self.processor.arch.physical_cores):
            if self._computation_settings(testcase, pcore_id):
                return True
            if self._consistency_defects(testcase, pcore_id):
                return True
        return False

    # -- record materialization ---------------------------------------------

    def _materialize_records(
        self,
        testcase: Testcase,
        defect: Defect,
        mnemonic: str,
        pcore_id: int,
        count: int,
        temperature_c: float,
        time_s: float,
    ) -> List[SDCRecord]:
        instruction = self.isa[mnemonic]
        operand_dtype = _operand_dtype(instruction)
        records = []
        arity = instruction.arity
        # One batched draw for the whole burst instead of per-operand
        # generator round trips.
        flat = datatypes.random_values(self._rng, operand_dtype, count * arity)
        for index in range(count):
            operands = tuple(flat[index * arity:(index + 1) * arity])
            correct = instruction.execute(*operands)
            event = self.injector.materialize(
                defect, instruction, correct, self._rng
            )
            records.append(
                SDCRecord(
                    processor_id=self.processor.processor_id,
                    testcase_id=testcase.testcase_id,
                    pcore_id=pcore_id,
                    defect_id=defect.defect_id,
                    instruction=mnemonic,
                    dtype=instruction.dtype,
                    expected_bits=event.expected_bits,
                    actual_bits=event.actual_bits,
                    temperature_c=temperature_c,
                    time_s=time_s,
                )
            )
        return records

    # -- main entry points ------------------------------------------------------

    def run_testcase(
        self,
        testcase: Testcase,
        duration_s: float,
        cores: Optional[Sequence[int]] = None,
        store: Optional[RecordStore] = None,
        dt_s: float = 10.0,
    ) -> TestcaseRun:
        """Run one testcase with live thermal co-simulation.

        ``cores`` are the physical cores under test (defaults to all
        non-masked cores, i.e. the framework's full-concurrency mode).
        The thermal state persists on the runner across calls, so
        consecutive testcases see each other's remaining heat.
        """
        if not math.isfinite(duration_s) or duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive and finite, got {duration_s!r}"
            )
        if not math.isfinite(dt_s) or dt_s <= 0:
            # dt_s == 0 would make the thermal loop below spin forever
            # without advancing elapsed time.
            raise ConfigurationError(
                f"dt_s must be a positive finite step in seconds, got {dt_s!r}"
            )
        if cores is None:
            cores = self.default_cores()
        else:
            cores = list(cores)
            masked = [c for c in cores if c in self.processor.masked_cores]
            if masked:
                raise ConfigurationError(f"cores {masked} are masked out")
        heat = min(testcase.heat_factor(self.isa) * self.heat_scale, HEAT_THROTTLE)
        loads = {core: (1.0, heat) for core in cores}
        run = TestcaseRun(
            processor_id=self.processor.processor_id,
            testcase_id=testcase.testcase_id,
            duration_s=duration_s,
            start_temp_c=self.thermal.package_temp,
        )
        # Hoisted per-run: trigger-law compilation happens once, not
        # once per (window, core, setting).  The per-window loop below
        # then only reads temperatures and samples the compiled laws,
        # consuming exactly the draws `_collect_interval` would.
        core_settings = self.compiled_core_settings(testcase, cores)
        elapsed = 0.0
        while elapsed < duration_s - 1e-9:
            step = min(dt_s, duration_s - elapsed)
            self.thermal.step(step, loads)
            elapsed += step
            time_s = self.thermal.elapsed_s
            for pcore_id, settings in core_settings:
                temp = self.thermal.core_temp(pcore_id)
                if temp > run.max_core_temp_c:
                    run.max_core_temp_c = temp
                for compiled, defect, mnemonic in settings:
                    count = compiled.sample_errors(temp, step, self._rng)
                    if not count:
                        continue
                    if mnemonic is not None:
                        run.records.extend(
                            self._materialize_records(
                                testcase, defect, mnemonic, pcore_id,
                                count, temp, time_s,
                            )
                        )
                    else:
                        for _ in range(count):
                            run.consistency_records.append(
                                ConsistencyRecord(
                                    processor_id=self.processor.processor_id,
                                    testcase_id=testcase.testcase_id,
                                    pcore_id=pcore_id,
                                    defect_id=defect.defect_id,
                                    kind=testcase.consistency_kind.value,
                                    temperature_c=temp,
                                    time_s=time_s,
                                )
                            )
        run.end_temp_c = self.thermal.package_temp
        if store is not None:
            store.extend(run.records)
            for record in run.consistency_records:
                store.add_consistency(record)
        return run

    def run_at_fixed_temperature(
        self,
        testcase: Testcase,
        temperature_c: float,
        duration_s: float,
        cores: Optional[Sequence[int]] = None,
        store: Optional[RecordStore] = None,
    ) -> TestcaseRun:
        """Run with the core temperature pinned (§5's preheat methodology)."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if cores is None:
            cores = [c.pcore_id for c in self.processor.available_cores()]
        run = TestcaseRun(
            processor_id=self.processor.processor_id,
            testcase_id=testcase.testcase_id,
            duration_s=duration_s,
            start_temp_c=temperature_c,
            end_temp_c=temperature_c,
            max_core_temp_c=temperature_c,
        )
        for pcore_id in cores:
            self._collect_interval(
                testcase, pcore_id, temperature_c, duration_s, 0.0, run
            )
        if store is not None:
            store.extend(run.records)
            for record in run.consistency_records:
                store.add_consistency(record)
        return run

    def _collect_interval(
        self,
        testcase: Testcase,
        pcore_id: int,
        temperature_c: float,
        interval_s: float,
        time_s: float,
        run: TestcaseRun,
    ) -> None:
        for defect, mnemonic in self._computation_settings(testcase, pcore_id):
            count = self.trigger.sample_errors(
                defect,
                testcase.testcase_id,
                temperature_c,
                testcase.usage_per_s(mnemonic),
                pcore_id,
                interval_s,
                self._rng,
            )
            if count:
                run.records.extend(
                    self._materialize_records(
                        testcase, defect, mnemonic, pcore_id,
                        count, temperature_c, time_s,
                    )
                )
        for defect in self._consistency_defects(testcase, pcore_id):
            count = self.trigger.sample_errors(
                defect,
                testcase.testcase_id,
                temperature_c,
                testcase.consistency_ops_per_s,
                pcore_id,
                interval_s,
                self._rng,
            )
            for _ in range(count):
                run.consistency_records.append(
                    ConsistencyRecord(
                        processor_id=self.processor.processor_id,
                        testcase_id=testcase.testcase_id,
                        pcore_id=pcore_id,
                        defect_id=defect.defect_id,
                        kind=testcase.consistency_kind.value,
                        temperature_c=temperature_c,
                        time_s=time_s,
                    )
                )

    def run_sequence(
        self,
        testcases: Sequence[Testcase],
        duration_per_testcase_s: float,
        store: Optional[RecordStore] = None,
        cores: Optional[Sequence[int]] = None,
    ) -> List[TestcaseRun]:
        """Run testcases back to back, thermal state carrying over."""
        return [
            self.run_testcase(tc, duration_per_testcase_s, cores=cores, store=store)
            for tc in testcases
        ]

    def idle(self, duration_s: float) -> None:
        """Let the package cool with no load (between test rounds)."""
        self.thermal.step(duration_s, {})
