"""Struct-of-arrays toolchain screening: one plan per processor, all at
once, bit-identical to the scalar runner.

:func:`screen_plans` executes *B* test plans against *B* processors
simultaneously and returns the same :class:`ToolchainReport` objects —
records, consistency records, temperatures, run metadata and RNG end
positions all equal, bit for bit, to looping
``TestFramework.execute(plan, processor)`` per processor.  The speedup
comes from where toolchain time actually goes: thermal co-simulation
and temperature readouts, which become lane-parallel NumPy updates on
the existing :class:`~repro.thermal.batch.BatchPackageThermalModel`
(busy-neighbour heating, cross-testcase heat persistence and the
``HEAT_THROTTLE`` ceiling all included, because the very same power
rows drive it).

The draw discipline is the one :mod:`repro.detectors.evaluate`
established for batched engines:

* each lane owns its scalar substream — ``substream(seed, "runner",
  processor_id)`` — so cross-lane execution order is free while
  per-lane draw order is sacred;
* the scalar runner touches its RNG only when a setting's Poisson mean
  is positive, which requires the core temperature to reach the
  setting's ``tmin``.  The engine therefore vectorizes the *no-draw*
  common path (a ``temps >= tmin`` mask over each lane's compiled
  settings) and replays the sparse surviving events through the exact
  scalar helpers — :class:`~repro.faults.trigger.CompiledSetting`
  sampling and ``ToolchainRunner._materialize_records`` operand/bitflip
  draws — in scalar window → core → setting order;
* heterogeneous plans run in lockstep global windows: every lane
  advances by its own ``min(dt_s, remaining)`` window each iteration
  (:meth:`~repro.thermal.batch.BatchPackageThermalModel.step_lanewise`),
  finished lanes request 0.0 and hold exactly still.

Preheat (Farron's burn-in) is batched with the same check-before-step
semantics as :meth:`repro.thermal.stress.StressTool.preheat_to`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ConfigurationError
from ..obs.context import span
from ..cpu.features import Feature
from ..cpu.isa import DEFAULT_ISA, ISA
from ..cpu.processor import Processor
from ..faults.trigger import TriggerModel
from ..thermal.batch import BatchPackageThermalModel
from .framework import TestPlan, ToolchainReport
from .library import TestcaseLibrary
from .records import ConsistencyRecord
from .runner import HEAT_THROTTLE, TestcaseRun, ToolchainRunner
from .testcase import ConsistencyKind

__all__ = ["BatchScreeningEngine", "screen_plans", "screening_record_frame"]

#: StressTool's default heat factor — the burn-in load the scalar
#: framework applies during preheat.
_STRESS_HEAT_FACTOR = 1.4
_PREHEAT_DT_S = 2.0
_PREHEAT_TIMEOUT_S = 3_600.0


class _Lane:
    """Per-processor execution state threaded through the engine."""

    __slots__ = (
        "index", "processor", "plan", "runner", "report",
        "entry_idx", "run", "settings", "setting_cols", "setting_tmins",
        "default_cores", "col_template", "active_row", "row_is_default",
        "budget", "comp_mnemonics", "has_cache_cons", "has_trx_cons",
    )

    def __init__(self, index, processor, plan, runner):
        self.index = index
        self.processor = processor
        self.plan = plan
        self.runner = runner
        self.report = ToolchainReport(processor_id=processor.processor_id)
        self.entry_idx = -1
        self.run = None
        self.settings: list = []
        self.setting_cols = None
        self.setting_tmins = None
        # Filled by the engine: default-core power/active templates and
        # the defect prefilter (see ``BatchScreeningEngine.__init__``).
        self.default_cores: list = []
        self.col_template = None
        self.active_row = None
        self.row_is_default = False
        self.budget = 0.0
        self.comp_mnemonics: list = []
        self.has_cache_cons = False
        self.has_trx_cons = False


class BatchScreeningEngine:
    """Runs per-processor test plans in lockstep across lanes.

    ``plans`` is either one shared :class:`TestPlan` or a sequence with
    one plan per processor; ``seed`` likewise is shared or per-lane.
    After :meth:`run`, :attr:`runners` holds each lane's scalar
    :class:`ToolchainRunner` — its ``_rng.bit_generator.state`` is the
    lane's RNG end position, comparable against the scalar oracle's.
    """

    def __init__(
        self,
        processors: Sequence[Processor],
        plans: Union[TestPlan, Sequence[TestPlan]],
        library: TestcaseLibrary,
        trigger_model: Optional[TriggerModel] = None,
        seed: Union[int, Sequence[int]] = 0,
        heat_scale: float = 1.0,
        isa: ISA = DEFAULT_ISA,
        dt_s: float = 10.0,
        obs=None,
    ):
        if not processors:
            raise ConfigurationError("processors must be non-empty")
        if not math.isfinite(dt_s) or dt_s <= 0:
            raise ConfigurationError(
                f"dt_s must be a positive finite step in seconds, got {dt_s!r}"
            )
        n = len(processors)
        if isinstance(plans, TestPlan):
            plans = [plans] * n
        else:
            plans = list(plans)
            if len(plans) != n:
                raise ConfigurationError(
                    f"got {len(plans)} plans for {n} processors"
                )
        if isinstance(seed, int):
            seeds = [seed] * n
        else:
            seeds = list(seed)
            if len(seeds) != n:
                raise ConfigurationError(
                    f"got {len(seeds)} seeds for {n} processors"
                )
        self.library = library
        self.trigger = trigger_model or TriggerModel()
        self.isa = isa
        self.heat_scale = heat_scale
        self.dt_s = dt_s
        self.obs = obs
        self.lanes = [
            _Lane(
                i,
                processor,
                plans[i],
                ToolchainRunner(
                    processor,
                    trigger_model=self.trigger,
                    isa=isa,
                    seed=seeds[i],
                    heat_scale=heat_scale,
                ),
            )
            for i, processor in enumerate(processors)
        ]
        self.thermal = BatchPackageThermalModel(
            [p.arch for p in processors]
        )
        #: Per-lane thermal clock, the scalar model's ``elapsed_s``
        #: (preheat time included — records carry absolute times).
        self.elapsed = np.zeros(n)
        self.windows = 0
        #: testcase_id → throttled heat factor; shared across lanes
        #: (heat depends only on testcase, ISA and heat_scale).
        self._heat: Dict[str, float] = {}
        # Per-lane constants the per-entry hot path leans on: the
        # unmasked-core column templates (one vector multiply writes a
        # power row instead of two scatter assignments), and a defect
        # prefilter — on a full-library sweep most (lane, testcase)
        # pairs trigger nothing, so one mnemonic/feature check skips
        # the whole compile step for them.
        for lane in self.lanes:
            lane.budget = float(
                self.thermal.dynamic_budget_per_core[lane.index]
            )
            lane.default_cores = lane.runner.default_cores()
            template = np.zeros(self.thermal.max_cores)
            template[lane.default_cores] = 1.0
            lane.col_template = template
            lane.active_row = template > 0.0
            mnemonics: Dict[str, None] = {}
            for defect in lane.processor.active_defects():
                if defect.is_consistency:
                    if Feature.CACHE in defect.features:
                        lane.has_cache_cons = True
                    if Feature.TRX_MEM in defect.features:
                        lane.has_trx_cons = True
                else:
                    for mnemonic in defect.instructions:
                        mnemonics[mnemonic] = None
            lane.comp_mnemonics = list(mnemonics)

    @property
    def runners(self) -> List[ToolchainRunner]:
        return [lane.runner for lane in self.lanes]

    # -- phases -------------------------------------------------------------

    def _preheat(self) -> None:
        """Batched ``StressTool.preheat_to`` for lanes whose plan asks.

        Scalar semantics per lane: check ``core_temp(0) >= target``
        *before* each 2 s step, stress every physical core (masked
        included) at ``(1.0, 1.4)``, give up after 3600 s of stepping.
        Lanes without a preheat target never move.
        """
        thermal = self.thermal
        targets = np.array([
            lane.plan.preheat_to_c
            if lane.plan.preheat_to_c is not None else -np.inf
            for lane in self.lanes
        ])
        if not np.any(targets > -np.inf):
            return
        n = thermal.n_lanes
        stress_powers = thermal.core_powers(
            np.ones(n), np.full(n, _STRESS_HEAT_FACTOR)
        )
        preheat_elapsed = np.zeros(n)
        # The heating set shrinks monotonically (a lane drops out when
        # core 0 reaches target or it times out), so the power rows —
        # and their pure-function row sum — only need recomputing on
        # the rare iterations where membership changes.
        prev_heating = None
        heat_powers = None
        total_power = None
        while True:
            core0 = thermal.t_package + thermal.deltas[:, 0]
            heating = (core0 < targets) & (
                preheat_elapsed < _PREHEAT_TIMEOUT_S
            )
            if not heating.any():
                return
            if prev_heating is None or not np.array_equal(
                heating, prev_heating
            ):
                heat_powers = np.where(heating[:, None], stress_powers, 0.0)
                total_power = thermal.total_power_rows(heat_powers)
                prev_heating = heating
            dt = np.where(heating, _PREHEAT_DT_S, 0.0)
            thermal.step_lanewise(dt, heat_powers, total_power=total_power)
            preheat_elapsed = preheat_elapsed + dt
            self.elapsed = self.elapsed + dt

    def _start_entry(self, lane: _Lane, powers, active_cols) -> bool:
        """Move a lane to its next plan entry; False when exhausted.

        Mirrors the top of the scalar ``run_testcase`` — same
        validation, same core list, same throttled heat and power per
        run core — and compiles the lane's trigger settings into flat
        arrays for the window mask.
        """
        i = lane.index
        while True:
            lane.entry_idx += 1
            if lane.entry_idx >= len(lane.plan.entries):
                powers[i, :] = 0.0
                active_cols[i, :] = False
                lane.run = None
                lane.settings = []
                return False
            entry = lane.plan.entries[lane.entry_idx]
            break
        runner = lane.runner
        processor = lane.processor
        duration_s = entry.duration_s
        if not math.isfinite(duration_s) or duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive and finite, got {duration_s!r}"
            )
        testcase = self.library[entry.testcase_id]
        heat = self._heat.get(entry.testcase_id)
        if heat is None:
            heat = min(
                testcase.heat_factor(self.isa) * self.heat_scale,
                HEAT_THROTTLE,
            )
            self._heat[entry.testcase_id] = heat
        # Scalar `_core_power(1.0, heat)` is `(1.0 * heat) * budget`;
        # `1.0 * heat == heat` exactly, so one multiply per lane.
        power = heat * lane.budget
        if entry.cores is None:
            cores = lane.default_cores
            # The 0/1 template times the scalar power writes the whole
            # row in one op: `1.0 * power == power` exactly, masked and
            # padded columns stay 0.0.  The active row only needs
            # rewriting after a custom-cores entry disturbed it.
            np.multiply(lane.col_template, power, out=powers[i])
            if not lane.row_is_default:
                active_cols[i, :] = lane.active_row
                lane.row_is_default = True
        else:
            cores = list(entry.cores)
            masked = [c for c in cores if c in processor.masked_cores]
            if masked:
                raise ConfigurationError(f"cores {masked} are masked out")
            powers[i, :] = 0.0
            active_cols[i, :] = False
            powers[i, cores] = power
            active_cols[i, cores] = True
            lane.row_is_default = False
        lane.run = TestcaseRun(
            processor_id=processor.processor_id,
            testcase_id=testcase.testcase_id,
            duration_s=duration_s,
            start_temp_c=float(self.thermal.t_package[i]),
        )
        # Defect prefilter: when no active defect can match this
        # testcase the compiled settings are empty by construction, so
        # skip the per-core compile walk entirely — no draw changes.
        if testcase.is_consistency:
            matches = (
                lane.has_cache_cons
                if testcase.consistency_kind is ConsistencyKind.COHERENCE
                else lane.has_trx_cons
            )
        else:
            matches = any(
                testcase.uses_instruction(m) for m in lane.comp_mnemonics
            )
        if not matches:
            lane.settings = []
            return True
        settings = []
        cols = []
        tmins = []
        for pcore_id, core_settings in runner.compiled_core_settings(
            testcase, cores
        ):
            for compiled, defect, mnemonic in core_settings:
                settings.append(
                    (compiled, defect, mnemonic, pcore_id, testcase)
                )
                cols.append(pcore_id)
                tmins.append(compiled.tmin_c)
        lane.settings = settings
        if settings:
            lane.setting_cols = np.array(cols, dtype=np.intp)
            lane.setting_tmins = np.array(tmins)
        return True

    def _finish_entry(self, lane: _Lane, run_max) -> None:
        """Scalar end-of-run bookkeeping: temps, store, report totals."""
        i = lane.index
        run = lane.run
        run.end_temp_c = float(self.thermal.t_package[i])
        run.max_core_temp_c = float(run_max[i])
        report = lane.report
        report.store.extend(run.records)
        for record in run.consistency_records:
            report.store.add_consistency(record)
        report.runs.append(run)
        report.total_duration_s += lane.plan.entries[lane.entry_idx].duration_s

    def _collect_window(self, lane: _Lane, temps_row, dt_i, time_i) -> None:
        """Replay one lane's window draws in exact scalar order.

        ``temps_row`` is the lane's post-step core-temperature row; the
        vectorized ``temps >= tmin`` mask drops every setting the
        scalar path would not draw for (its Poisson mean is zero below
        ``tmin``), and the survivors sample and materialize through the
        lane's own scalar runner and RNG.
        """
        hits = np.nonzero(
            temps_row[lane.setting_cols] >= lane.setting_tmins
        )[0]
        if hits.size == 0:
            return
        run = lane.run
        runner = lane.runner
        rng = runner._rng
        for j in hits:
            compiled, defect, mnemonic, pcore_id, testcase = lane.settings[j]
            # Python-float temperature: the ramp/power/pow chain below
            # must run in scalar arithmetic — `10.0 ** x` on a NumPy
            # scalar is not guaranteed the last-ulp-identical libm pow.
            temp = float(temps_row[pcore_id])
            count = compiled.sample_errors(temp, dt_i, rng)
            if not count:
                continue
            if mnemonic is not None:
                run.records.extend(
                    runner._materialize_records(
                        testcase, defect, mnemonic, pcore_id,
                        count, temp, time_i,
                    )
                )
            else:
                for _ in range(count):
                    run.consistency_records.append(
                        ConsistencyRecord(
                            processor_id=lane.processor.processor_id,
                            testcase_id=testcase.testcase_id,
                            pcore_id=pcore_id,
                            defect_id=defect.defect_id,
                            kind=testcase.consistency_kind.value,
                            temperature_c=temp,
                            time_s=time_i,
                        )
                    )

    # -- main loop ----------------------------------------------------------

    def run(self) -> List[ToolchainReport]:
        with span(
            self.obs,
            "toolchain.batch_screen",
            lanes=len(self.lanes),
            mode="batch",
        ):
            reports = self._run()
        if self.obs is not None:
            self.obs.inc(
                "repro_toolchain_screen_lanes_total",
                len(self.lanes),
                mode="batch",
            )
            self.obs.inc(
                "repro_toolchain_screen_windows_total",
                self.windows,
                mode="batch",
            )
            self.obs.inc(
                "repro_toolchain_screen_substeps_total",
                self.thermal.substeps,
                mode="batch",
            )
            self.obs.inc(
                "repro_toolchain_screen_errors_total",
                sum(report.error_count for report in reports),
                mode="batch",
            )
        return reports

    def _run(self) -> List[ToolchainReport]:
        thermal = self.thermal
        n = thermal.n_lanes
        dt_cap = self.dt_s
        self._preheat()
        powers = np.zeros((n, thermal.max_cores))
        active_cols = np.zeros((n, thermal.max_cores), dtype=bool)
        durations = np.zeros(n)
        entry_elapsed = np.zeros(n)
        run_max = np.zeros(n)
        running = np.zeros(n, dtype=bool)
        # Lanes whose current entry has live settings; everything else
        # rides the pure-array path with no per-window Python work.
        hot: Dict[int, _Lane] = {}
        for lane in self.lanes:
            if self._start_entry(lane, powers, active_cols):
                running[lane.index] = True
                durations[lane.index] = lane.plan.entries[
                    lane.entry_idx
                ].duration_s
                if lane.settings:
                    hot[lane.index] = lane
        # Power rows only change at entry boundaries, so their scalar
        # left-to-right row sum is carried across the windows in
        # between (it's a pure function of the rows).
        total_power = thermal.total_power_rows(powers)
        # Reusable window buffers; the np.*(..., out=) calls perform the
        # exact operations of the allocating forms they replace.
        temps = np.empty((n, thermal.max_cores))
        masked_temps = np.empty_like(temps)
        window_max = np.empty(n)
        while running.any():
            # Scalar window: `step = min(dt_s, duration_s - elapsed)`,
            # loop while `elapsed < duration_s - 1e-9`.
            dt = np.where(
                running, np.minimum(dt_cap, durations - entry_elapsed), 0.0
            )
            thermal.step_lanewise(dt, powers, total_power=total_power)
            entry_elapsed = entry_elapsed + dt
            self.elapsed = self.elapsed + dt
            self.windows += 1
            # `core_temps()` is `t_package[:, None] + deltas`.
            np.add(thermal.t_package[:, None], thermal.deltas, out=temps)
            masked_temps.fill(-np.inf)
            np.copyto(masked_temps, temps, where=active_cols)
            masked_temps.max(axis=1, out=window_max)
            np.maximum(run_max, window_max, out=run_max)
            for i, lane in hot.items():
                if dt[i] > 0.0:
                    self._collect_window(
                        lane, temps[i], float(dt[i]), float(self.elapsed[i])
                    )
            finished = running & (entry_elapsed >= durations - 1e-9)
            if finished.any():
                for i in np.nonzero(finished)[0]:
                    lane = self.lanes[i]
                    self._finish_entry(lane, run_max)
                    run_max[i] = 0.0
                    entry_elapsed[i] = 0.0
                    if self._start_entry(lane, powers, active_cols):
                        durations[i] = lane.plan.entries[
                            lane.entry_idx
                        ].duration_s
                        if lane.settings:
                            hot[int(i)] = lane
                        else:
                            hot.pop(int(i), None)
                    else:
                        running[i] = False
                        hot.pop(int(i), None)
                total_power = thermal.total_power_rows(powers)
        return [lane.report for lane in self.lanes]


def screen_plans(
    processors: Sequence[Processor],
    plans: Union[TestPlan, Sequence[TestPlan]],
    library: TestcaseLibrary,
    trigger_model: Optional[TriggerModel] = None,
    seed: Union[int, Sequence[int]] = 0,
    heat_scale: float = 1.0,
    isa: ISA = DEFAULT_ISA,
    dt_s: float = 10.0,
    obs=None,
) -> List[ToolchainReport]:
    """Run one plan per processor on the batch screening engine.

    Bit-identical to ``[TestFramework(...).execute(plan, p) for ...]``
    with matching seeds — same records in the same order, same
    temperatures, same RNG end positions per processor.
    """
    return BatchScreeningEngine(
        processors,
        plans,
        library,
        trigger_model=trigger_model,
        seed=seed,
        heat_scale=heat_scale,
        isa=isa,
        dt_s=dt_s,
        obs=obs,
    ).run()


def screening_record_frame(reports: Sequence[ToolchainReport]):
    """Column layout of a screening's computation-SDC records.

    The batched engine materializes the same ``SDCRecord`` stream as
    the scalar runner, so the columnar analytics layer consumes it
    directly: this stacks every report's store into one
    :class:`~repro.analysis.columnar.RecordFrame` (struct-of-arrays,
    record order = lane order then store order).
    """
    from ..analysis.columnar import RecordFrame

    records = []
    for report in reports:
        records.extend(report.store.records)
    return RecordFrame.from_records(records)
