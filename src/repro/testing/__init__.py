"""SDC testing toolchain: testcases, library, framework, runner."""

from .testcase import Complexity, ConsistencyKind, Testcase
from .library import (
    FEATURE_QUOTAS,
    TOOLCHAIN_SIZE,
    TestcaseLibrary,
    build_library,
)
from .alttoolchain import ALT_TOOLCHAIN_SIZE, build_open_library
from .records import ConsistencyRecord, RecordStore, SDCRecord, SettingKey
from .runner import HEAT_THROTTLE, TestcaseRun, ToolchainRunner
from .framework import PlanEntry, TestFramework, TestPlan, ToolchainReport
from .batch import BatchScreeningEngine, screen_plans, screening_record_frame
from .multithread import (
    CoherenceTestResult,
    TxMemTestResult,
    run_coherence_test,
    run_txmem_test,
)

__all__ = [
    "Complexity",
    "ConsistencyKind",
    "Testcase",
    "FEATURE_QUOTAS",
    "TOOLCHAIN_SIZE",
    "TestcaseLibrary",
    "build_library",
    "ALT_TOOLCHAIN_SIZE",
    "build_open_library",
    "ConsistencyRecord",
    "RecordStore",
    "SDCRecord",
    "SettingKey",
    "HEAT_THROTTLE",
    "TestcaseRun",
    "ToolchainRunner",
    "PlanEntry",
    "TestFramework",
    "TestPlan",
    "ToolchainReport",
    "BatchScreeningEngine",
    "screen_plans",
    "screening_record_frame",
    "CoherenceTestResult",
    "TxMemTestResult",
    "run_coherence_test",
    "run_txmem_test",
]
