"""The 633-testcase toolchain library.

"The toolchain includes 633 testcases and a framework" (§2.3).  Ours is
generated deterministically: every run of the study uses the identical
library, which is what lets "suspected"-priority bookkeeping (Farron,
§7.1) refer to stable testcase ids.

Composition principles, all grounded in the paper:

* testcases cover many features beyond the five vulnerable ones — this
  is why "560 out of the 633 testcases have not detected any errors" in
  production (Observation 11);
* each instruction gets a small number of tight-loop testcases (high
  usage stress), plus appearances inside library- and application-class
  testcases at diluted usage — reproducing §4.1's "a defective
  instruction is used in seven testcases, but only two of them generate
  errors";
* consistency features (cache coherency, transactional memory) are only
  exercised by multi-threaded testcases (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import ConfigurationError
from ..rng import substream
from ..cpu.features import Feature
from ..cpu.isa import DEFAULT_ISA, ISA
from .testcase import Complexity, ConsistencyKind, Testcase

__all__ = ["TOOLCHAIN_SIZE", "FEATURE_QUOTAS", "TestcaseLibrary", "build_library"]

#: §2.3: the toolchain ships 633 testcases.
TOOLCHAIN_SIZE = 633

#: How many testcases target each feature.  Sums to TOOLCHAIN_SIZE.
FEATURE_QUOTAS: Dict[Feature, int] = {
    Feature.ALU: 95,
    Feature.VECTOR: 85,
    Feature.FPU: 105,
    Feature.CACHE: 45,
    Feature.TRX_MEM: 35,
    Feature.CRYPTO: 55,
    Feature.MEMORY: 65,
    Feature.BRANCH: 55,
    Feature.INTERCONNECT: 48,
    Feature.PREFETCH: 45,
}

#: Background instructions blended into every mix (address arithmetic,
#: moves) — they dilute usage without targeting any vulnerable feature.
_FILLER = ("MOV_B64", "BRTAKEN_I32")

#: How many tight-loop testcases each instruction gets.
_LOOPS_PER_INSTRUCTION = 2


@dataclass
class TestcaseLibrary:
    """An ordered, queryable collection of testcases."""

    testcases: List[Testcase] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_id = {tc.testcase_id: tc for tc in self.testcases}
        if len(self._by_id) != len(self.testcases):
            raise ConfigurationError("duplicate testcase ids in library")
        # Inverted mnemonic → testcases index and consistency cache.
        # Both preserve library order, so queries return exactly what
        # the previous full scans did without the O(633) walk per call.
        self._by_instruction: Dict[str, List[Testcase]] = {}
        self._consistency: List[Testcase] = []
        for tc in self.testcases:
            if tc.is_consistency:
                self._consistency.append(tc)
            for mnemonic in tc.instruction_mix:
                self._by_instruction.setdefault(mnemonic, []).append(tc)

    def __len__(self) -> int:
        return len(self.testcases)

    def __iter__(self) -> Iterator[Testcase]:
        return iter(self.testcases)

    def __getitem__(self, testcase_id: str) -> Testcase:
        try:
            return self._by_id[testcase_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown testcase {testcase_id!r}"
            ) from None

    def __contains__(self, testcase_id: str) -> bool:
        return testcase_id in self._by_id

    def ids(self) -> List[str]:
        return [tc.testcase_id for tc in self.testcases]

    def by_feature(self, feature: Feature) -> List[Testcase]:
        return [tc for tc in self.testcases if tc.feature is feature]

    def loops(self) -> List[Testcase]:
        return [
            tc
            for tc in self.testcases
            if tc.complexity is Complexity.INSTRUCTION_LOOP
        ]

    def consistency_testcases(self) -> List[Testcase]:
        return list(self._consistency)

    def using_instruction(self, mnemonic: str) -> List[Testcase]:
        return list(self._by_instruction.get(mnemonic, ()))

    def subset(self, ids: Sequence[str]) -> "TestcaseLibrary":
        return TestcaseLibrary([self[i] for i in ids])


def _normalized(mix: Dict[str, float]) -> Dict[str, float]:
    total = sum(mix.values())
    return {m: f / total for m, f in mix.items()}


def build_library(seed: int = 633, isa: ISA = DEFAULT_ISA) -> TestcaseLibrary:
    """Build the deterministic 633-testcase toolchain."""
    rng = substream(seed, "testcase-library")
    testcases: List[Testcase] = []
    counters: Dict[Feature, int] = {f: 0 for f in FEATURE_QUOTAS}

    def next_id(feature: Feature) -> str:
        counters[feature] += 1
        return f"TC-{feature.value.upper().replace('_', '')}-{counters[feature]:03d}"

    def add(testcase: Testcase) -> None:
        testcases.append(testcase)

    # Group instructions by the primary (first-listed) feature.
    by_primary: Dict[Feature, List[str]] = {f: [] for f in FEATURE_QUOTAS}
    for mnemonic, instruction in isa.instructions.items():
        primary = instruction.features[0]
        if primary in by_primary:
            by_primary[primary].append(mnemonic)

    remaining: Dict[Feature, int] = dict(FEATURE_QUOTAS)

    # 1) Tight instruction loops: high usage stress on one instruction.
    for feature, mnemonics in by_primary.items():
        if feature in (Feature.CACHE, Feature.TRX_MEM):
            continue
        for mnemonic in mnemonics:
            for variant in range(_LOOPS_PER_INSTRUCTION):
                if remaining[feature] <= 0:
                    break
                hot = 0.92 - 0.04 * variant
                mix = {mnemonic: hot}
                filler_share = (1.0 - hot) / len(_FILLER)
                for filler in _FILLER:
                    mix[filler] = mix.get(filler, 0.0) + filler_share
                add(
                    Testcase(
                        testcase_id=next_id(feature),
                        name=f"{mnemonic.lower()} loop v{variant}",
                        feature=feature,
                        complexity=Complexity.INSTRUCTION_LOOP,
                        instruction_mix=_normalized(mix),
                    )
                )
                remaining[feature] -= 1

    # 2) Consistency testcases: multi-threaded protocol stressors.
    for feature, kind in (
        (Feature.CACHE, ConsistencyKind.COHERENCE),
        (Feature.TRX_MEM, ConsistencyKind.TXMEM),
    ):
        while remaining[feature] > 0:
            threads = int(rng.choice([2, 4, 8]))
            ops = float(rng.uniform(0.8, 6.0)) * 1.0e5
            add(
                Testcase(
                    testcase_id=next_id(feature),
                    name=f"{kind.value} stressor x{threads}",
                    feature=feature,
                    complexity=Complexity.APPLICATION,
                    threads=threads,
                    consistency_kind=kind,
                    consistency_ops_per_s=ops,
                )
            )
            remaining[feature] -= 1

    # 3) Library-class testcases: a few same-feature instructions each.
    for feature, mnemonics in by_primary.items():
        if not mnemonics or feature in (Feature.CACHE, Feature.TRX_MEM):
            continue
        library_quota = remaining[feature] * 55 // 100
        for _ in range(library_quota):
            count = min(len(mnemonics), int(rng.integers(2, 4)))
            chosen = list(
                rng.choice(mnemonics, size=count, replace=False)
            )
            mix: Dict[str, float] = {}
            share = 0.75 / count
            for mnemonic in chosen:
                mix[mnemonic] = mix.get(mnemonic, 0.0) + share
            for filler in _FILLER:
                mix[filler] = mix.get(filler, 0.0) + 0.25 / len(_FILLER)
            add(
                Testcase(
                    testcase_id=next_id(feature),
                    name=f"{feature.value} library routine",
                    feature=feature,
                    complexity=Complexity.LIBRARY,
                    instruction_mix=_normalized(mix),
                )
            )
            remaining[feature] -= 1

    # 4) Application-class testcases: diffuse cross-feature mixes with
    #    low per-instruction usage (rarely able to trigger defects).
    all_mnemonics = [
        m
        for f, ms in by_primary.items()
        for m in ms
        if f not in (Feature.CACHE, Feature.TRX_MEM)
    ]
    for feature in by_primary:
        if feature in (Feature.CACHE, Feature.TRX_MEM):
            continue
        while remaining[feature] > 0:
            own = by_primary[feature]
            count = min(len(all_mnemonics), int(rng.integers(6, 10)))
            chosen = set(
                rng.choice(all_mnemonics, size=count, replace=False)
            )
            if own:
                chosen.add(own[int(rng.integers(len(own)))])
            mix = {}
            share = 0.6 / len(chosen)
            for mnemonic in chosen:
                mix[mnemonic] = mix.get(mnemonic, 0.0) + share
            for filler in _FILLER:
                mix[filler] = mix.get(filler, 0.0) + 0.4 / len(_FILLER)
            add(
                Testcase(
                    testcase_id=next_id(feature),
                    name=f"{feature.value} application scenario",
                    feature=feature,
                    complexity=Complexity.APPLICATION,
                    instruction_mix=_normalized(mix),
                )
            )
            remaining[feature] -= 1

    if len(testcases) != TOOLCHAIN_SIZE:
        raise ConfigurationError(
            f"library built {len(testcases)} testcases, expected {TOOLCHAIN_SIZE}"
        )
    return TestcaseLibrary(testcases)
