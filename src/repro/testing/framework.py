"""The test framework: selection, ordering, and resource allocation.

"According to a user's specification, the framework selects the
testcases to be performed and controls their execution order, resource
allocation (such as CPU time and concurrency) during testing" (§2.3).

A :class:`TestPlan` is the user specification; :class:`TestFramework`
executes plans against processors.  The equal-allocation plan is what
the study's large-scale tests use ("we execute all the testcases in the
toolchain sequentially, and each testcase is allocated with equal test
duration", §2.4) and what the Alibaba baseline in §7 runs; Farron
builds its own prioritized plans in :mod:`repro.core.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..cpu.processor import Processor
from ..faults.trigger import TriggerModel
from .library import TestcaseLibrary
from .records import RecordStore
from .runner import TestcaseRun, ToolchainRunner

__all__ = ["PlanEntry", "TestPlan", "ToolchainReport", "TestFramework"]


@dataclass(frozen=True)
class PlanEntry:
    """One scheduled testcase execution."""

    testcase_id: str
    duration_s: float
    #: Physical cores to run on; ``None`` means every available core.
    cores: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("plan durations must be positive")


@dataclass
class TestPlan:
    """An ordered test specification."""

    __test__ = False  # not a pytest test class


    entries: List[PlanEntry] = field(default_factory=list)
    #: Optional preheat phase before the first testcase (Farron's
    #: burn-in; the baseline does not preheat).
    preheat_to_c: Optional[float] = None

    @property
    def total_duration_s(self) -> float:
        return sum(entry.duration_s for entry in self.entries)

    def testcase_ids(self) -> List[str]:
        return [entry.testcase_id for entry in self.entries]


@dataclass
class ToolchainReport:
    """Everything one plan execution produced."""

    processor_id: str
    runs: List[TestcaseRun] = field(default_factory=list)
    store: RecordStore = field(default_factory=RecordStore)
    total_duration_s: float = 0.0

    @property
    def detected(self) -> bool:
        return any(run.detected for run in self.runs)

    @property
    def failed_testcase_ids(self) -> Set[str]:
        return {run.testcase_id for run in self.runs if run.detected}

    @property
    def error_count(self) -> int:
        return sum(run.error_count for run in self.runs)

    def failed_settings(self) -> Set[Tuple[str, str]]:
        return {
            (self.processor_id, run.testcase_id)
            for run in self.runs
            if run.detected
        }


class TestFramework:
    """Executes test plans; the toolchain's driver component."""

    __test__ = False  # not a pytest test class

    def __init__(
        self,
        library: TestcaseLibrary,
        trigger_model: Optional[TriggerModel] = None,
        seed: int = 0,
        heat_scale: float = 1.0,
        engine: str = "scalar",
    ):
        if engine not in ("scalar", "batch"):
            raise ConfigurationError(
                f"engine must be 'scalar' or 'batch', got {engine!r}"
            )
        self.library = library
        self.trigger = trigger_model or TriggerModel()
        self.seed = seed
        self.heat_scale = heat_scale
        #: ``"scalar"`` runs plans one processor at a time on
        #: :class:`ToolchainRunner` (the oracle); ``"batch"`` routes
        #: single-processor :meth:`execute` calls and every
        #: :meth:`execute_batch` group through the struct-of-arrays
        #: screening engine — bit-identical results either way.
        self.engine = engine

    # -- plan construction ---------------------------------------------------

    def equal_allocation_plan(
        self,
        per_testcase_s: float,
        testcase_ids: Optional[Sequence[str]] = None,
    ) -> TestPlan:
        """All (or selected) testcases sequentially, equal durations."""
        ids = list(testcase_ids) if testcase_ids is not None else self.library.ids()
        return TestPlan(
            entries=[PlanEntry(tc_id, per_testcase_s) for tc_id in ids]
        )

    # -- execution -----------------------------------------------------------

    def runner_for(self, processor: Processor) -> ToolchainRunner:
        return ToolchainRunner(
            processor,
            trigger_model=self.trigger,
            seed=self.seed,
            heat_scale=self.heat_scale,
        )

    def execute(
        self,
        plan: TestPlan,
        processor: Processor,
        runner: Optional[ToolchainRunner] = None,
    ) -> ToolchainReport:
        """Run a plan start to finish on one processor.

        A fresh runner (fresh thermal state at idle equilibrium) is
        created unless one is passed in, in which case remaining heat
        from previous activity carries over — deliberately, since test
        order and prior heat matter (Observation 10).
        """
        if runner is None:
            if self.engine == "batch":
                return self.execute_batch(plan, [processor])[0]
            runner = self.runner_for(processor)
        report = ToolchainReport(processor_id=processor.processor_id)
        if plan.preheat_to_c is not None:
            from ..thermal.stress import StressTool

            StressTool(runner.thermal).preheat_to(
                plan.preheat_to_c, monitor_core=0
            )
        for entry in plan.entries:
            testcase = self.library[entry.testcase_id]
            run = runner.run_testcase(
                testcase,
                entry.duration_s,
                cores=entry.cores,
                store=report.store,
            )
            report.runs.append(run)
            report.total_duration_s += entry.duration_s
        return report

    def execute_batch(
        self,
        plans,
        processors: Sequence[Processor],
        obs=None,
    ) -> List[ToolchainReport]:
        """Run one plan per processor (or a shared plan) as one group.

        With ``engine="batch"`` the whole group executes on the
        struct-of-arrays screening engine; with ``engine="scalar"`` it
        is a plain loop over :meth:`execute`.  Both orders are
        bit-identical — each processor draws from its own substream,
        so grouping is free.
        """
        if isinstance(plans, TestPlan):
            plans = [plans] * len(processors)
        else:
            plans = list(plans)
            if len(plans) != len(processors):
                raise ConfigurationError(
                    f"got {len(plans)} plans for {len(processors)} processors"
                )
        if self.engine == "scalar":
            return [
                self.execute(plan, processor, runner=self.runner_for(processor))
                for plan, processor in zip(plans, processors)
            ]
        from .batch import screen_plans

        return screen_plans(
            processors,
            plans,
            self.library,
            trigger_model=self.trigger,
            seed=self.seed,
            heat_scale=self.heat_scale,
            obs=obs,
        )

    def known_failing_plan(
        self,
        processor: Processor,
        generous_duration_s: float = 1800.0,
        preheat_to_c: float = 88.0,
    ) -> TestPlan:
        """The generous ground-truth plan behind
        :meth:`known_failing_settings`: every testcase that
        structurally matches one of the processor's defects, run long
        and hot."""
        runner = self.runner_for(processor)
        candidates = [
            tc for tc in self.library if runner.can_ever_fail(tc)
        ]
        return TestPlan(
            entries=[
                PlanEntry(tc.testcase_id, generous_duration_s)
                for tc in candidates
            ],
            preheat_to_c=preheat_to_c,
        )

    def known_failing_settings(
        self,
        processor: Processor,
        generous_duration_s: float = 1800.0,
        preheat_to_c: float = 88.0,
    ) -> Set[Tuple[str, str]]:
        """Ground-truth failing settings for a processor.

        Used to define "total known errors" in the coverage metric of
        §7.2 (Figure 11): every testcase that structurally matches a
        defect is run generously, hot, to see whether it can fail at
        all.
        """
        plan = self.known_failing_plan(
            processor, generous_duration_s, preheat_to_c
        )
        report = self.execute(plan, processor)
        return report.failed_settings()

    def known_failing_settings_many(
        self,
        processors: Sequence[Processor],
        generous_duration_s: float = 1800.0,
        preheat_to_c: float = 88.0,
    ) -> List[Set[Tuple[str, str]]]:
        """:meth:`known_failing_settings` for a whole group at once.

        The candidate plans differ per processor (defect mixes differ);
        the batch engine runs heterogeneous plans in lockstep, so on
        ``engine="batch"`` the group screens simultaneously.
        """
        plans = [
            self.known_failing_plan(
                processor, generous_duration_s, preheat_to_c
            )
            for processor in processors
        ]
        return [
            report.failed_settings()
            for report in self.execute_batch(plans, processors)
        ]
