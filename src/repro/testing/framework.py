"""The test framework: selection, ordering, and resource allocation.

"According to a user's specification, the framework selects the
testcases to be performed and controls their execution order, resource
allocation (such as CPU time and concurrency) during testing" (§2.3).

A :class:`TestPlan` is the user specification; :class:`TestFramework`
executes plans against processors.  The equal-allocation plan is what
the study's large-scale tests use ("we execute all the testcases in the
toolchain sequentially, and each testcase is allocated with equal test
duration", §2.4) and what the Alibaba baseline in §7 runs; Farron
builds its own prioritized plans in :mod:`repro.core.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..cpu.processor import Processor
from ..faults.trigger import TriggerModel
from .library import TestcaseLibrary
from .records import RecordStore
from .runner import TestcaseRun, ToolchainRunner

__all__ = ["PlanEntry", "TestPlan", "ToolchainReport", "TestFramework"]


@dataclass(frozen=True)
class PlanEntry:
    """One scheduled testcase execution."""

    testcase_id: str
    duration_s: float
    #: Physical cores to run on; ``None`` means every available core.
    cores: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("plan durations must be positive")


@dataclass
class TestPlan:
    """An ordered test specification."""

    __test__ = False  # not a pytest test class


    entries: List[PlanEntry] = field(default_factory=list)
    #: Optional preheat phase before the first testcase (Farron's
    #: burn-in; the baseline does not preheat).
    preheat_to_c: Optional[float] = None

    @property
    def total_duration_s(self) -> float:
        return sum(entry.duration_s for entry in self.entries)

    def testcase_ids(self) -> List[str]:
        return [entry.testcase_id for entry in self.entries]


@dataclass
class ToolchainReport:
    """Everything one plan execution produced."""

    processor_id: str
    runs: List[TestcaseRun] = field(default_factory=list)
    store: RecordStore = field(default_factory=RecordStore)
    total_duration_s: float = 0.0

    @property
    def detected(self) -> bool:
        return any(run.detected for run in self.runs)

    @property
    def failed_testcase_ids(self) -> Set[str]:
        return {run.testcase_id for run in self.runs if run.detected}

    @property
    def error_count(self) -> int:
        return sum(run.error_count for run in self.runs)

    def failed_settings(self) -> Set[Tuple[str, str]]:
        return {
            (self.processor_id, run.testcase_id)
            for run in self.runs
            if run.detected
        }


class TestFramework:
    """Executes test plans; the toolchain's driver component."""

    __test__ = False  # not a pytest test class

    def __init__(
        self,
        library: TestcaseLibrary,
        trigger_model: Optional[TriggerModel] = None,
        seed: int = 0,
        heat_scale: float = 1.0,
    ):
        self.library = library
        self.trigger = trigger_model or TriggerModel()
        self.seed = seed
        self.heat_scale = heat_scale

    # -- plan construction ---------------------------------------------------

    def equal_allocation_plan(
        self,
        per_testcase_s: float,
        testcase_ids: Optional[Sequence[str]] = None,
    ) -> TestPlan:
        """All (or selected) testcases sequentially, equal durations."""
        ids = list(testcase_ids) if testcase_ids is not None else self.library.ids()
        return TestPlan(
            entries=[PlanEntry(tc_id, per_testcase_s) for tc_id in ids]
        )

    # -- execution -----------------------------------------------------------

    def runner_for(self, processor: Processor) -> ToolchainRunner:
        return ToolchainRunner(
            processor,
            trigger_model=self.trigger,
            seed=self.seed,
            heat_scale=self.heat_scale,
        )

    def execute(
        self,
        plan: TestPlan,
        processor: Processor,
        runner: Optional[ToolchainRunner] = None,
    ) -> ToolchainReport:
        """Run a plan start to finish on one processor.

        A fresh runner (fresh thermal state at idle equilibrium) is
        created unless one is passed in, in which case remaining heat
        from previous activity carries over — deliberately, since test
        order and prior heat matter (Observation 10).
        """
        if runner is None:
            runner = self.runner_for(processor)
        report = ToolchainReport(processor_id=processor.processor_id)
        if plan.preheat_to_c is not None:
            from ..thermal.stress import StressTool

            StressTool(runner.thermal).preheat_to(
                plan.preheat_to_c, monitor_core=0
            )
        for entry in plan.entries:
            testcase = self.library[entry.testcase_id]
            run = runner.run_testcase(
                testcase,
                entry.duration_s,
                cores=entry.cores,
                store=report.store,
            )
            report.runs.append(run)
            report.total_duration_s += entry.duration_s
        return report

    def known_failing_settings(
        self,
        processor: Processor,
        generous_duration_s: float = 1800.0,
        preheat_to_c: float = 88.0,
    ) -> Set[Tuple[str, str]]:
        """Ground-truth failing settings for a processor.

        Used to define "total known errors" in the coverage metric of
        §7.2 (Figure 11): every testcase that structurally matches a
        defect is run generously, hot, to see whether it can fail at
        all.
        """
        runner = self.runner_for(processor)
        candidates = [
            tc for tc in self.library if runner.can_ever_fail(tc)
        ]
        plan = TestPlan(
            entries=[
                PlanEntry(tc.testcase_id, generous_duration_s)
                for tc in candidates
            ],
            preheat_to_c=preheat_to_c,
        )
        report = self.execute(plan, processor, runner=runner)
        return report.failed_settings()
