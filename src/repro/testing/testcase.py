"""Testcases: the unit of SDC testing.

The manufacturer toolchain's testcases "are programs that simulate
cloud workloads ... Most testcases focus on individual processor
features" with three complexity classes: tight instruction loops,
library calls, and application logic (§2.3).  Complexity matters
because it dilutes instruction usage: §5 finds "failed testcases use
this defective instruction several orders of magnitude more frequently
than other testcases" — a tight loop stresses its hot instruction near
the full nominal rate, while application-logic testcases spread
executions over many instructions and rarely trigger anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..cpu.features import DataType, Feature
from ..cpu.isa import DEFAULT_ISA, ISA

__all__ = ["Complexity", "ConsistencyKind", "Testcase"]


class Complexity(enum.Enum):
    """The three testcase complexity classes of §2.3."""

    INSTRUCTION_LOOP = "instruction_loop"
    LIBRARY = "library"
    APPLICATION = "application"


class ConsistencyKind(enum.Enum):
    """What a multi-threaded consistency testcase exercises."""

    COHERENCE = "coherence"
    TXMEM = "txmem"


@dataclass(frozen=True)
class Testcase:
    """One toolchain testcase.

    ``instruction_mix`` maps mnemonics to their fraction of the dynamic
    instruction stream (fractions sum to 1).  ``nominal_ips`` is the
    simulated execution rate; the *usage stress* a testcase puts on an
    instruction is ``fraction * nominal_ips`` executions per second.
    """

    #: Not a pytest test class despite the name.
    __test__ = False

    testcase_id: str
    name: str
    feature: Feature
    complexity: Complexity
    instruction_mix: Mapping[str, float] = field(default_factory=dict)
    threads: int = 1
    consistency_kind: Optional[ConsistencyKind] = None
    nominal_ips: float = 1.0e6
    #: Consistency testcases stress the protocol at this rate
    #: (operations or commits per second) instead of an instruction mix.
    consistency_ops_per_s: float = 2.0e5

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigurationError("threads must be >= 1")
        if self.consistency_kind is not None:
            if self.threads < 2:
                raise ConfigurationError(
                    "consistency testcases must be multi-threaded (§4.1)"
                )
            return
        if not self.instruction_mix:
            raise ConfigurationError(
                "computation testcases need an instruction mix"
            )
        total = sum(self.instruction_mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"instruction mix of {self.testcase_id} sums to {total}, not 1"
            )
        for mnemonic, fraction in self.instruction_mix.items():
            if mnemonic not in DEFAULT_ISA:
                raise ConfigurationError(f"unknown instruction {mnemonic}")
            if fraction <= 0:
                raise ConfigurationError("mix fractions must be positive")

    def _heat_cache(self) -> Dict[int, Tuple[ISA, float]]:
        # Lazily attached memo for heat_factor; the dataclass is frozen,
        # so the cache is installed via object.__setattr__.
        cache = getattr(self, "_heat_memo", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_heat_memo", cache)
        return cache

    # -- usage --------------------------------------------------------------

    def usage_per_s(self, mnemonic: str) -> float:
        """Executions per second of one instruction under this testcase."""
        return self.instruction_mix.get(mnemonic, 0.0) * self.nominal_ips

    def uses_instruction(self, mnemonic: str) -> bool:
        return mnemonic in self.instruction_mix

    @property
    def is_consistency(self) -> bool:
        return self.consistency_kind is not None

    @property
    def is_multithreaded(self) -> bool:
        return self.threads > 1

    # -- derived properties ---------------------------------------------------

    def datatypes(self, isa: ISA = DEFAULT_ISA) -> Tuple[DataType, ...]:
        """Result data types this testcase's instructions produce."""
        return tuple(
            dict.fromkeys(
                isa[m].dtype for m in self.instruction_mix
            )
        )

    def heat_factor(self, isa: ISA = DEFAULT_ISA) -> float:
        """Relative heat of running this testcase flat-out.

        The mix-weighted instruction heat; consistency testcases use a
        fixed moderate factor (they are memory-bound).
        """
        if self.is_consistency:
            return 1.1
        cache = self._heat_cache()
        entry = cache.get(id(isa))
        if entry is not None and entry[0] is isa:
            return entry[1]
        value = sum(
            fraction * isa[m].heat
            for m, fraction in self.instruction_mix.items()
        )
        cache[id(isa)] = (isa, value)
        return value

    def hot_instructions(self, threshold: float = 0.5) -> Tuple[str, ...]:
        """Instructions taking at least ``threshold`` of the mix."""
        return tuple(
            m for m, f in self.instruction_mix.items() if f >= threshold
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        if self.is_consistency:
            return (
                f"{self.testcase_id} [{self.feature}] {self.threads}-thread "
                f"{self.consistency_kind.value} stressor"
            )
        hot = max(self.instruction_mix, key=self.instruction_mix.get)
        return (
            f"{self.testcase_id} [{self.feature}] {self.complexity.value}, "
            f"hot={hot} ({self.instruction_mix[hot]:.0%})"
        )
