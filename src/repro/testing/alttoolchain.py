"""An OpenDCDiag-style alternative toolchain.

§2.3/§6.1: "we also try other toolchains designed for SDC detection
like OpenDCDiag as supplementary and reach the same observations in our
study ... we recommend OpenDCDiag since we have validated that it can
reach the same observations as our toolchain."

This module builds a second, independently-composed testcase library —
different size, different naming, different mix construction, a
different random seed lineage — so the reproduction can make the same
robustness claim: the study's observations are properties of the
*defect population*, not artifacts of one toolchain's composition.

Compositional differences from the vendor library:

* smaller (~230 testcases vs 633) — an open project curates fewer,
  broader tests;
* heavier on tight loops (fuzz-style single-instruction stressing) and
  lighter on application-class scenarios;
* consistency tests use higher default concurrency.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigurationError
from ..rng import substream
from ..cpu.features import Feature
from ..cpu.isa import DEFAULT_ISA, ISA
from .library import TestcaseLibrary, _normalized
from .testcase import Complexity, ConsistencyKind, Testcase

__all__ = ["ALT_TOOLCHAIN_SIZE", "build_open_library"]

#: Size of the open toolchain (OpenDCDiag ships on the order of a
#: couple hundred test contents).
ALT_TOOLCHAIN_SIZE = 230

_FILLER = ("MOV_B64", "BRTAKEN_I32")

#: Loop variants per instruction: the open toolchain leans on
#: fuzz-style stressing, so more variants than the vendor library.
_LOOPS_PER_INSTRUCTION = 3

_CONSISTENCY_QUOTA = {Feature.CACHE: 18, Feature.TRX_MEM: 14}


def build_open_library(seed: int = 77, isa: ISA = DEFAULT_ISA) -> TestcaseLibrary:
    """Build the alternative open-source-style toolchain."""
    rng = substream(seed, "open-toolchain")
    testcases: List[Testcase] = []
    counter = 0

    def next_id() -> str:
        nonlocal counter
        counter += 1
        return f"ODC-{counter:03d}"

    # 1) Fuzz loops: every instruction, several hotness variants.
    mnemonics = [
        m
        for m, inst in isa.instructions.items()
        if inst.features[0] not in (Feature.CACHE, Feature.TRX_MEM)
    ]
    for mnemonic in mnemonics:
        instruction = isa[mnemonic]
        for variant in range(_LOOPS_PER_INSTRUCTION):
            hot = 0.95 - 0.05 * variant
            mix: Dict[str, float] = {mnemonic: hot}
            for filler in _FILLER:
                mix[filler] = mix.get(filler, 0.0) + (1.0 - hot) / len(_FILLER)
            testcases.append(
                Testcase(
                    testcase_id=next_id(),
                    name=f"fuzz {mnemonic.lower()} v{variant}",
                    feature=instruction.features[0],
                    complexity=Complexity.INSTRUCTION_LOOP,
                    instruction_mix=_normalized(mix),
                )
            )

    # 2) Consistency stressors: higher concurrency than the vendor's.
    for feature, quota in _CONSISTENCY_QUOTA.items():
        kind = (
            ConsistencyKind.COHERENCE
            if feature is Feature.CACHE
            else ConsistencyKind.TXMEM
        )
        for _ in range(quota):
            testcases.append(
                Testcase(
                    testcase_id=next_id(),
                    name=f"open {kind.value} stressor",
                    feature=feature,
                    complexity=Complexity.APPLICATION,
                    threads=int(rng.choice([4, 8, 16])),
                    consistency_kind=kind,
                    consistency_ops_per_s=float(rng.uniform(1.5, 7.0)) * 1.0e5,
                )
            )

    # 3) A modest set of mixed-pressure content (library-class).
    while len(testcases) < ALT_TOOLCHAIN_SIZE:
        count = int(rng.integers(2, 4))
        chosen = list(rng.choice(mnemonics, size=count, replace=False))
        mix = {}
        share = 0.8 / count
        for mnemonic in chosen:
            mix[mnemonic] = mix.get(mnemonic, 0.0) + share
        for filler in _FILLER:
            mix[filler] = mix.get(filler, 0.0) + 0.2 / len(_FILLER)
        primary = isa[chosen[0]].features[0]
        testcases.append(
            Testcase(
                testcase_id=next_id(),
                name="open mixed-pressure content",
                feature=primary,
                complexity=Complexity.LIBRARY,
                instruction_mix=_normalized(mix),
            )
        )

    if len(testcases) != ALT_TOOLCHAIN_SIZE:
        raise ConfigurationError(
            f"open toolchain built {len(testcases)}, expected {ALT_TOOLCHAIN_SIZE}"
        )
    return TestcaseLibrary(testcases)
