"""SDC records and the record store.

The study "collected more than ten thousand SDC records" (§2.4); every
analysis in §4-§5 is a query over such records.  A record captures the
full context of one corruption: the setting (processor × testcase), the
core, the defective instruction, expected/actual bit patterns, and the
core temperature at occurrence — everything Figures 4-9 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..cpu import datatypes
from ..cpu.features import DataType

__all__ = ["SDCRecord", "ConsistencyRecord", "RecordStore", "SettingKey"]

#: A setting is the paper's unit of reproducibility analysis:
#: (processor_id, testcase_id).
SettingKey = Tuple[str, str]


@dataclass(frozen=True)
class SDCRecord:
    """One computation SDC."""

    processor_id: str
    testcase_id: str
    pcore_id: int
    defect_id: str
    instruction: str
    dtype: DataType
    expected_bits: int
    actual_bits: int
    temperature_c: float
    time_s: float

    @property
    def setting(self) -> SettingKey:
        return (self.processor_id, self.testcase_id)

    @property
    def mask(self) -> int:
        """XOR of expected and actual bit patterns (§4.2's mask)."""
        return self.expected_bits ^ self.actual_bits

    @property
    def expected(self):
        return datatypes.decode(self.expected_bits, self.dtype)

    @property
    def actual(self):
        return datatypes.decode(self.actual_bits, self.dtype)

    @property
    def flipped_bits(self) -> int:
        return datatypes.popcount(self.mask)

    @property
    def precision_loss(self) -> Optional[float]:
        return datatypes.relative_precision_loss(
            self.expected, self.actual, self.dtype
        )


@dataclass(frozen=True)
class ConsistencyRecord:
    """One consistency SDC (stale read or torn commit).

    Consistency SDCs "don't have a deterministic pattern" (§4.2), so no
    expected/actual bits — just the violation context.
    """

    processor_id: str
    testcase_id: str
    pcore_id: int
    defect_id: str
    kind: str  # "coherence" or "txmem"
    temperature_c: float
    time_s: float

    @property
    def setting(self) -> SettingKey:
        return (self.processor_id, self.testcase_id)


@dataclass
class RecordStore:
    """An appendable corpus of SDC records with the study's queries."""

    records: List[SDCRecord] = field(default_factory=list)
    consistency_records: List[ConsistencyRecord] = field(default_factory=list)

    def add(self, record: SDCRecord) -> None:
        self.records.append(record)

    def add_consistency(self, record: ConsistencyRecord) -> None:
        self.consistency_records.append(record)

    def extend(self, records: Iterable[SDCRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records) + len(self.consistency_records)

    def __iter__(self) -> Iterator[SDCRecord]:
        return iter(self.records)

    # -- queries ---------------------------------------------------------------

    def filter(self, predicate: Callable[[SDCRecord], bool]) -> "RecordStore":
        return RecordStore(
            records=[r for r in self.records if predicate(r)],
            consistency_records=list(self.consistency_records),
        )

    def for_dtype(self, dtype: DataType) -> List[SDCRecord]:
        return [r for r in self.records if r.dtype is dtype]

    def for_processor(self, processor_id: str) -> "RecordStore":
        return RecordStore(
            records=[r for r in self.records if r.processor_id == processor_id],
            consistency_records=[
                r
                for r in self.consistency_records
                if r.processor_id == processor_id
            ],
        )

    def for_setting(self, setting: SettingKey) -> List[SDCRecord]:
        return [r for r in self.records if r.setting == setting]

    def settings(self) -> List[SettingKey]:
        """Distinct settings, computation and consistency combined."""
        seen: Dict[SettingKey, None] = {}
        for record in self.records:
            seen.setdefault(record.setting)
        for record in self.consistency_records:
            seen.setdefault(record.setting)
        return list(seen)

    def by_setting(self) -> Dict[SettingKey, List[SDCRecord]]:
        grouped: Dict[SettingKey, List[SDCRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.setting, []).append(record)
        return grouped

    def masks(self, dtype: Optional[DataType] = None) -> List[int]:
        return [
            r.mask for r in self.records if dtype is None or r.dtype is dtype
        ]

    def datatypes_seen(self) -> List[DataType]:
        seen: Dict[DataType, None] = {}
        for record in self.records:
            seen.setdefault(record.dtype)
        return list(seen)
