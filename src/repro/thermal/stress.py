"""Stress-tool equivalent of the Linux ``stress`` command.

§5 uses stress tooling two ways, both reproduced here:

* *preheating*: "before testing, we use stress toolchains ... to
  preheat the processor to the desired temperature" — settings that
  cannot naturally reach high temperatures get driven there first;
* *stress/temperature separation*: "we use stress toolchain on some
  cores that are not under test while execute test workloads on target
  cores", raising utilization with temperature almost unchanged (the
  stress cores produce the heat; the tested core's own contribution is
  negligible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .model import PackageThermalModel

__all__ = ["StressTool"]


@dataclass
class StressTool:
    """Drives selected cores at a fixed utilization to generate heat."""

    model: PackageThermalModel
    heat_factor: float = 1.4

    def __post_init__(self) -> None:
        if self.heat_factor <= 0:
            raise ConfigurationError("heat_factor must be positive")

    def loads(
        self, cores: Sequence[int], utilization: float = 1.0
    ) -> Dict[int, Tuple[float, float]]:
        """The ``core_loads`` mapping stressing the given cores."""
        return {core: (utilization, self.heat_factor) for core in cores}

    def preheat_to(
        self,
        target_c: float,
        monitor_core: int,
        stress_cores: Optional[Sequence[int]] = None,
        timeout_s: float = 3_600.0,
        dt_s: float = 2.0,
    ) -> bool:
        """Heat the package until ``monitor_core`` reaches ``target_c``.

        Stresses all cores by default.  Returns False if the target is
        physically unreachable within the timeout (the caller should
        then use a stronger heat source or accept the ceiling).
        """
        if stress_cores is None:
            stress_cores = range(self.model.arch.physical_cores)
        loads = self.loads(list(stress_cores))
        elapsed = 0.0
        while elapsed < timeout_s:
            if self.model.core_temp(monitor_core) >= target_c:
                return True
            self.model.step(dt_s, loads)
            elapsed += dt_s
        return self.model.core_temp(monitor_core) >= target_c

    def busy_neighbours(
        self, victim_core: int, n_busy: int
    ) -> Dict[int, Tuple[float, float]]:
        """Loads with ``n_busy`` non-victim cores running at full tilt.

        Reproduces the "other core behaviors" case: the victim core is
        idle in this mapping, yet its temperature rises with ``n_busy``
        because the cores share cooling.
        """
        total = self.model.arch.physical_cores
        if not 0 <= victim_core < total:
            raise ConfigurationError(f"core {victim_core} out of range")
        if not 0 <= n_busy < total:
            raise ConfigurationError("n_busy must leave the victim idle")
        others = [c for c in range(total) if c != victim_core]
        return self.loads(others[:n_busy])
