"""Temperature monitoring.

The study "monitor[s] the processor temperature during testcase
execution by reading cooling device monitor data from system kernel
file" (§5).  :class:`TemperatureMonitor` plays that role for the
simulation: it samples a thermal model at a fixed period and keeps a
bounded history window — the same window Farron's adaptive temperature
boundary votes over (§7.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from ..errors import ConfigurationError
from .model import PackageThermalModel

__all__ = ["TemperatureSample", "TemperatureMonitor"]


@dataclass(frozen=True)
class TemperatureSample:
    """One reading: simulation time, core id, temperature."""

    time_s: float
    core_id: int
    temperature_c: float


@dataclass
class TemperatureMonitor:
    """Bounded-window temperature sampler over a thermal model."""

    model: PackageThermalModel
    core_id: int
    window: int = 64

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError("window must be positive")
        self._samples: Deque[TemperatureSample] = deque(maxlen=self.window)

    def sample(self) -> TemperatureSample:
        """Take one reading and append it to the window."""
        reading = TemperatureSample(
            time_s=self.model.elapsed_s,
            core_id=self.core_id,
            temperature_c=self.model.core_temp(self.core_id),
        )
        self._samples.append(reading)
        return reading

    @property
    def readings(self) -> List[TemperatureSample]:
        return list(self._samples)

    @property
    def temperatures(self) -> List[float]:
        return [s.temperature_c for s in self._samples]

    @property
    def latest(self) -> Optional[TemperatureSample]:
        return self._samples[-1] if self._samples else None

    def fraction_above(self, threshold_c: float) -> float:
        """Fraction of windowed readings above a threshold.

        This is the statistic Farron's adaptive boundary votes on:
        "raising the temperature boundary ... if more than a half of
        temperature records within the window exceed current boundary".
        """
        if not self._samples:
            return 0.0
        above = sum(1 for s in self._samples if s.temperature_c > threshold_c)
        return above / len(self._samples)

    def clear(self) -> None:
        self._samples.clear()
