"""Thermal substrate: package RC model, cooling, stress, monitoring."""

from .batch import BatchPackageThermalModel
from .model import PackageThermalModel, ThermalParams
from .cooling import CoolingDevice, FanCurveController
from .stress import StressTool
from .sensors import TemperatureMonitor, TemperatureSample

__all__ = [
    "BatchPackageThermalModel",
    "PackageThermalModel",
    "ThermalParams",
    "CoolingDevice",
    "FanCurveController",
    "StressTool",
    "TemperatureMonitor",
    "TemperatureSample",
]
