"""Cooling devices and their controllers.

Datacenters "strive to minimize temperature influence through cooling
systems" (§5), and one of the two temperature-control options §5 names
is "controlling the cooling devices" — noted as not widely applicable
in Alibaba Cloud, which is why Farron uses workload backoff instead.
Both options exist here so the trade-off can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from .model import PackageThermalModel

__all__ = ["CoolingDevice", "FanCurveController"]


@dataclass
class CoolingDevice:
    """A cooling device with discrete performance levels.

    Level 0 is the baseline (cooling factor 1.0); each higher level
    multiplies the package's thermal resistance by ``step_factor``
    (stronger airflow → lower effective resistance → cooler package).
    """

    model: PackageThermalModel
    levels: int = 4
    step_factor: float = 0.88

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ConfigurationError("a cooling device needs at least one level")
        if not 0.0 < self.step_factor < 1.0:
            raise ConfigurationError("step_factor must be in (0, 1)")
        self._level = 0
        self._apply()

    @property
    def level(self) -> int:
        return self._level

    def set_level(self, level: int) -> None:
        if not 0 <= level < self.levels:
            raise ConfigurationError(
                f"level {level} out of range (0..{self.levels - 1})"
            )
        self._level = level
        self._apply()

    def _apply(self) -> None:
        self.model.set_cooling_factor(self.step_factor**self._level)


@dataclass
class FanCurveController:
    """A simple hysteretic fan controller driving a cooling device.

    Raises the cooling level when the package exceeds ``high_c``, lowers
    it when the package falls below ``low_c``.  Called once per thermal
    step.
    """

    device: CoolingDevice
    high_c: float = 75.0
    low_c: float = 60.0

    def __post_init__(self) -> None:
        if self.low_c >= self.high_c:
            raise ConfigurationError("low_c must be below high_c")
        self.transitions: List[tuple] = []

    def update(self) -> None:
        temp = self.device.model.package_temp
        if temp > self.high_c and self.device.level < self.device.levels - 1:
            self.device.set_level(self.device.level + 1)
            self.transitions.append((self.device.model.elapsed_s, self.device.level))
        elif temp < self.low_c and self.device.level > 0:
            self.device.set_level(self.device.level - 1)
            self.transitions.append((self.device.model.elapsed_s, self.device.level))
