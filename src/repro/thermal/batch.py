"""Struct-of-arrays batch integration of the lumped-RC thermal model.

:class:`BatchPackageThermalModel` steps *N* independent package models
at once with NumPy array ops, **bit-identical per lane** to stepping
*N* scalar :class:`~repro.thermal.model.PackageThermalModel` instances.
The fleet-scale Farron online simulation
(:func:`repro.core.batch_online.simulate_online_batch`) spends most of
its time here, so the inner loop must be array-shaped — but the
benchmarks assert exact parity with the scalar path, so every
floating-point operation must happen in the same order per lane:

* NumPy elementwise ``+ - * /`` on float64 are the same IEEE-754
  operations the scalar model performs, so per-lane sequences of
  elementwise updates match bit for bit;
* the package power sum accumulates **core by core along axis 1**
  (``total = total + powers[:, i]``), reproducing the scalar
  ``sum(powers)`` left-to-right addition order — a pairwise
  ``np.sum(axis=1)`` would round differently;
* lanes with fewer cores than the widest lane are zero-padded; padded
  powers and deltas stay exactly ``0.0`` (their ODE is ``dD = (0 -
  0/R)/C = 0``) and ``x + 0.0 == x`` for the non-negative power sums,
  so padding never perturbs a lane;
* the substep schedule (``min(c_core * r_core, 2.0)`` chunks of the
  requested ``dt_s``) is identical for every lane because it depends
  only on the shared :class:`~repro.thermal.model.ThermalParams`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..cpu.processor import MicroArchitecture
from ..errors import ConfigurationError
from .model import ThermalParams

__all__ = ["BatchPackageThermalModel"]


class BatchPackageThermalModel:
    """Thermal state of ``N`` packages, stepped together.

    Lane ``i`` mirrors ``PackageThermalModel(archs[i], params,
    cooling_factor)`` exactly.  Readouts are arrays over lanes; cores
    beyond a lane's ``physical_cores`` are padding and must be masked
    by the caller (see :attr:`core_mask`).
    """

    def __init__(
        self,
        archs: Sequence[MicroArchitecture],
        params: Optional[ThermalParams] = None,
        cooling_factor: float = 1.0,
    ):
        if not archs:
            raise ConfigurationError("archs must be non-empty")
        if cooling_factor <= 0:
            raise ConfigurationError("cooling_factor must be positive")
        self.params = params if params is not None else ThermalParams()
        self.cooling_factor = cooling_factor
        self.n_lanes = len(archs)
        self.n_cores = np.array(
            [arch.physical_cores for arch in archs], dtype=np.intp
        )
        self.max_cores = int(self.n_cores.max())
        #: [n_lanes, max_cores] — True where the core exists on the lane.
        self.core_mask = (
            np.arange(self.max_cores)[None, :] < self.n_cores[:, None]
        )
        #: Max dynamic watts per core at heat factor 1.0, per lane.
        self.dynamic_budget_per_core = np.array(
            [
                (arch.tdp_watts - self.params.idle_power_w)
                / arch.physical_cores
                for arch in archs
            ]
        )
        # Idle equilibrium, the scalar model's starting temperature.
        # One scalar expression broadcast to all lanes — identical to
        # each lane's own equilibrium_package_temp(0.0).
        idle_equilibrium = self.params.ambient_c + (
            self.params.idle_power_w * self.params.r_package * cooling_factor
        )
        self.t_package = np.full(self.n_lanes, idle_equilibrium)
        self.deltas = np.zeros((self.n_lanes, self.max_cores))
        self.elapsed_s = 0.0
        #: Integration substeps executed so far (all lanes advance
        #: together, so this counts wall work, not lane-substeps).
        #: Telemetry reads it after a run — the hot loop itself never
        #: touches an Observability object.
        self.substeps = 0

    def core_powers(
        self, utilization: np.ndarray, heat_factor: np.ndarray
    ) -> np.ndarray:
        """[n_lanes, max_cores] watts for a uniform all-core load.

        Matches the scalar ``_core_power(utilization, heat_factor)`` —
        the product associates ``(utilization * heat_factor) * budget``
        — applied to every existing core of the lane; padded cores get
        exactly 0.0.  Callers zero out additional columns (masked
        cores) before stepping.
        """
        if np.any(utilization < 0.0) or np.any(utilization > 1.0):
            raise ConfigurationError("utilization must be in [0, 1]")
        if np.any(heat_factor < 0.0):
            raise ConfigurationError("heat_factor must be non-negative")
        per_core = (
            (utilization * heat_factor) * self.dynamic_budget_per_core
        )
        return np.where(self.core_mask, per_core[:, None], 0.0)

    def total_power_rows(self, powers: np.ndarray) -> np.ndarray:
        """Per-lane package watts: idle power plus the core-by-core sum.

        Scalar ``sum(powers)`` starts from 0 and adds left to right; a
        padded column adds +0.0, which is exact for the non-negative
        power rows.  The result depends on ``powers`` alone, so callers
        whose power rows persist across windows (the screening engine's
        plan entries) may compute it once and pass it back into
        :meth:`step_lanewise` unchanged.
        """
        total_power = np.zeros(self.n_lanes)
        for core in range(self.max_cores):
            total_power = total_power + powers[:, core]
        return self.params.idle_power_w + total_power

    def step(self, dt_s: float, powers: np.ndarray) -> None:
        """Advance every lane ``dt_s`` seconds under ``powers`` watts.

        ``powers`` is [n_lanes, max_cores] with padded columns equal to
        0.0 (see :meth:`core_powers`).  The substep loop, the
        core-by-core power accumulation, and the two Euler updates are
        the scalar model's, evaluated lane-parallel.
        """
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        params = self.params
        r_eff = params.r_package * self.cooling_factor
        total_power = self.total_power_rows(powers)
        remaining = dt_s
        max_substep = min(params.c_core * params.r_core, 2.0)
        while remaining > 1e-12:
            h = min(remaining, max_substep)
            dT = (
                total_power - (self.t_package - params.ambient_c) / r_eff
            ) / params.c_package
            self.t_package = self.t_package + dT * h
            dD = (powers - self.deltas / params.r_core) / params.c_core
            self.deltas = self.deltas + dD * h
            remaining -= h
            self.substeps += 1
        self.elapsed_s += dt_s

    def step_lanewise(
        self,
        dt_lanes: np.ndarray,
        powers: np.ndarray,
        total_power: Optional[np.ndarray] = None,
    ) -> None:
        """Advance lane ``i`` by ``dt_lanes[i]`` seconds under ``powers``.

        The toolchain screening engine runs heterogeneous plans in
        lockstep: lanes mid-entry request their own window lengths, and
        finished lanes request 0.0 and must not move.  Per lane the
        substep schedule is exactly the scalar model's — the same
        ``min(remaining, max_substep)`` chunks in the same order —
        realized lane-parallel by zeroing the finished lanes'
        ``h``: ``x + dX * 0.0 == x`` exactly for the finite thermal
        states, so an idle lane's Euler update is the identity while
        the others keep integrating.

        ``total_power``, when given, must equal
        ``total_power_rows(powers)`` — a cache the screening engine
        carries across the many windows a plan entry spans, since the
        accumulation is a pure function of the unchanged power rows.

        Unlike :meth:`step` this does not advance :attr:`elapsed_s`
        (the lanes no longer share one clock); the caller tracks
        per-lane elapsed time itself.
        """
        if np.any(dt_lanes < 0.0):
            raise ConfigurationError("dt_lanes must be non-negative")
        params = self.params
        r_eff = params.r_package * self.cooling_factor
        if total_power is None:
            total_power = self.total_power_rows(powers)
        remaining = np.array(dt_lanes, dtype=float)
        max_substep = min(params.c_core * params.r_core, 2.0)
        active = remaining > 1e-12
        # One scratch buffer instead of four temporaries per substep.
        # Every np.* call below performs the same IEEE-754 operation in
        # the same order as the allocating expressions it replaces —
        # `out=` changes where results land, not what they are.
        scratch = np.empty_like(self.deltas)
        while active.any():
            h = np.where(active, np.minimum(remaining, max_substep), 0.0)
            dT = (
                total_power - (self.t_package - params.ambient_c) / r_eff
            ) / params.c_package
            self.t_package = self.t_package + dT * h
            np.divide(self.deltas, params.r_core, out=scratch)
            np.subtract(powers, scratch, out=scratch)
            np.divide(scratch, params.c_core, out=scratch)
            np.multiply(scratch, h[:, None], out=scratch)
            self.deltas += scratch
            remaining = remaining - h
            active = remaining > 1e-12
            self.substeps += 1

    # -- readouts -----------------------------------------------------------

    def core_temps(self) -> np.ndarray:
        """[n_lanes, max_cores]; padded columns read as package temp."""
        return self.t_package[:, None] + self.deltas

    def max_core_temp(self, active_mask: np.ndarray) -> np.ndarray:
        """Per-lane max core temperature over ``active_mask`` columns.

        ``active_mask`` is [n_lanes, max_cores] and must select at
        least one core per lane (the scalar simulation's unmasked-core
        list is never empty).
        """
        temps = np.where(active_mask, self.core_temps(), -np.inf)
        return temps.max(axis=1)

    def lane_states(self) -> List[tuple]:
        """Per-lane ``(t_package, deltas)`` snapshots (tests/debugging)."""
        return [
            (float(self.t_package[i]), self.deltas[i, : self.n_cores[i]].tolist())
            for i in range(self.n_lanes)
        ]
