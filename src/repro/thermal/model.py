"""A lumped-RC thermal model of a multi-core package.

Observation 10's mechanisms all reduce to heat flow:

* *shared cooling*: cores share a package/heatsink, so "one defective
  core only produces errors when other cores are busy" — busy
  neighbours raise the package temperature every core rides on;
* *remaining heat*: a hot testcase leaves the package warm for the next
  one (test-order dependence), so the package needs a thermal time
  constant of tens of seconds;
* *framework efficiency*: a toolchain that burns fewer cycles per test
  generates less heat and reproduces fewer SDCs.

The model is the standard two-level lumped RC network: the package
integrates total power against ambient through ``r_package``, and each
core adds a fast local delta through ``r_core``::

    C_pkg  * dT_pkg/dt   = P_total - (T_pkg - T_ambient) / R_pkg
    C_core * dDelta_i/dt = P_i - Delta_i / R_core
    T_core_i             = T_pkg + Delta_i

Defaults are tuned so an idle package sits near the paper's ~45 °C idle
temperature and a fully-loaded one reaches the high-70s, with single
hot cores pushing beyond 80 °C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..cpu.processor import MicroArchitecture

__all__ = ["ThermalParams", "PackageThermalModel"]


@dataclass(frozen=True)
class ThermalParams:
    """Physical constants of the package's thermal network."""

    ambient_c: float = 38.0
    #: Package-to-ambient thermal resistance (°C per watt).  Lowering it
    #: models a stronger cooling device.
    r_package: float = 0.25
    #: Package heat capacity (joules per °C); tau = R*C ≈ 90 s gives the
    #: minutes-scale "remaining heat" the paper observed.
    c_package: float = 360.0
    #: Core-local resistance and capacity (fast, small).
    r_core: float = 1.0
    c_core: float = 5.0
    #: Idle (leakage + uncore) package power in watts.
    idle_power_w: float = 28.0

    def __post_init__(self) -> None:
        for name in ("r_package", "c_package", "r_core", "c_core"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


@dataclass
class PackageThermalModel:
    """Steppable thermal state of one processor package."""

    arch: MicroArchitecture
    params: ThermalParams = field(default_factory=ThermalParams)
    #: Cooling effectiveness multiplier on r_package; <1 means stronger
    #: cooling (a controllable cooling device, §5's "controlling the
    #: cooling devices").
    cooling_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cooling_factor <= 0:
            raise ConfigurationError("cooling_factor must be positive")
        self._t_package = self.equilibrium_package_temp(0.0)
        self._deltas: List[float] = [0.0] * self.arch.physical_cores
        self._elapsed_s = 0.0

    # -- power --------------------------------------------------------------

    @property
    def dynamic_budget_per_core(self) -> float:
        """Max dynamic watts one core draws at heat factor 1.0."""
        return (self.arch.tdp_watts - self.params.idle_power_w) / (
            self.arch.physical_cores
        )

    def _core_power(self, utilization: float, heat_factor: float) -> float:
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization must be in [0, 1]")
        if heat_factor < 0:
            raise ConfigurationError("heat_factor must be non-negative")
        return utilization * heat_factor * self.dynamic_budget_per_core

    # -- equilibria -----------------------------------------------------------

    def equilibrium_package_temp(self, dynamic_power_w: float) -> float:
        total = self.params.idle_power_w + dynamic_power_w
        return self.params.ambient_c + total * self.params.r_package * (
            self.cooling_factor
        )

    def equilibrium_core_temp(
        self, utilization: float, heat_factor: float = 1.0, others_power_w: float = 0.0
    ) -> float:
        """Steady-state temperature of a core under sustained load."""
        p_core = self._core_power(utilization, heat_factor)
        t_pkg = self.equilibrium_package_temp(p_core + others_power_w)
        return t_pkg + p_core * self.params.r_core

    # -- stepping -------------------------------------------------------------

    def step(
        self,
        dt_s: float,
        core_loads: Optional[Dict[int, tuple]] = None,
    ) -> None:
        """Advance the model ``dt_s`` seconds.

        ``core_loads`` maps physical-core id to ``(utilization,
        heat_factor)``; unlisted cores are idle.  Large ``dt_s`` values
        are internally substepped for stability.
        """
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        loads = core_loads or {}
        for core_id in loads:
            if not 0 <= core_id < self.arch.physical_cores:
                raise ConfigurationError(f"core {core_id} out of range")
        powers = [0.0] * self.arch.physical_cores
        for core_id, (utilization, heat_factor) in loads.items():
            powers[core_id] = self._core_power(utilization, heat_factor)

        remaining = dt_s
        max_substep = min(self.params.c_core * self.params.r_core, 2.0)
        while remaining > 1e-12:
            h = min(remaining, max_substep)
            total_power = self.params.idle_power_w + sum(powers)
            r_eff = self.params.r_package * self.cooling_factor
            dT = (
                total_power - (self._t_package - self.params.ambient_c) / r_eff
            ) / self.params.c_package
            self._t_package += dT * h
            for i in range(self.arch.physical_cores):
                dD = (powers[i] - self._deltas[i] / self.params.r_core) / (
                    self.params.c_core
                )
                self._deltas[i] += dD * h
            remaining -= h
        self._elapsed_s += dt_s

    def run_to_equilibrium(
        self, core_loads: Optional[Dict[int, tuple]] = None, tolerance: float = 0.01
    ) -> None:
        """Step until temperatures stop changing (used for preheating)."""
        previous = self.package_temp
        for _ in range(10_000):
            self.step(5.0, core_loads)
            if abs(self.package_temp - previous) < tolerance:
                return
            previous = self.package_temp

    # -- readouts -------------------------------------------------------------

    @property
    def package_temp(self) -> float:
        return self._t_package

    @property
    def elapsed_s(self) -> float:
        return self._elapsed_s

    def core_temp(self, core_id: int) -> float:
        if not 0 <= core_id < self.arch.physical_cores:
            raise ConfigurationError(f"core {core_id} out of range")
        return self._t_package + self._deltas[core_id]

    def core_temps(self) -> List[float]:
        return [self._t_package + d for d in self._deltas]

    def hottest_core(self) -> int:
        temps = self.core_temps()
        return max(range(len(temps)), key=temps.__getitem__)

    # -- control ---------------------------------------------------------------

    def set_cooling_factor(self, factor: float) -> None:
        if factor <= 0:
            raise ConfigurationError("cooling factor must be positive")
        self.cooling_factor = factor

    def reset(self, temperature_c: Optional[float] = None) -> None:
        """Reset to idle equilibrium (or a given package temperature)."""
        self._t_package = (
            self.equilibrium_package_temp(0.0)
            if temperature_c is None
            else temperature_c
        )
        self._deltas = [0.0] * self.arch.physical_cores
        self._elapsed_s = 0.0
